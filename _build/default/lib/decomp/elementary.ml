open Linalg

let l2 l = Mat.of_lists [ [ 1; 0 ]; [ l; 1 ] ]
let u2 k = Mat.of_lists [ [ 1; k ]; [ 0; 1 ] ]

let make ~dim ~axis coeffs =
  if axis < 0 || axis >= dim then invalid_arg "Elementary.make: bad axis";
  if Array.length coeffs <> dim then invalid_arg "Elementary.make: bad row length";
  if coeffs.(axis) = 0 then invalid_arg "Elementary.make: zero diagonal";
  Mat.make dim dim (fun i j ->
      if i = axis then coeffs.(j) else if i = j then 1 else 0)

let special_rows m =
  (* rows that differ from the identity *)
  let n = Mat.rows m in
  let rows = ref [] in
  for i = n - 1 downto 0 do
    let differs = ref false in
    for j = 0 to n - 1 do
      if Mat.get m i j <> if i = j then 1 else 0 then differs := true
    done;
    if !differs then rows := i :: !rows
  done;
  !rows

let is_unirow m =
  Mat.is_square m
  &&
  match special_rows m with
  | [] -> true
  | [ i ] -> Mat.get m i i <> 0
  | _ -> false

let is_elementary m =
  Mat.is_square m
  &&
  match special_rows m with
  | [] -> true
  | [ i ] -> Mat.get m i i = 1
  | _ -> false

let axis_of m =
  if not (Mat.is_square m) then None
  else match special_rows m with [ i ] when Mat.get m i i = 1 -> Some i | _ -> None

let product = function
  | [] -> invalid_arg "Elementary.product: empty"
  | m :: rest -> List.fold_left Mat.mul m rest
