open Linalg

type result = { conjugator : Mat.t; similar : Mat.t; factors : Mat.t list }

let conjugate m t = Mat.mul (Mat.mul m t) (Unimodular.inverse m)

let two_factor_result conjugator t =
  let similar = conjugate conjugator t in
  match Decompose.min_factors similar with
  | Some factors when List.length factors <= 2 -> Some { conjugator; similar; factors }
  | _ -> None

let sufficient t =
  if Mat.det t <> 1 || Mat.rows t <> 2 || Mat.cols t <> 2 then
    invalid_arg "Similarity.sufficient: expected 2x2, det 1";
  let a = Mat.get t 0 0
  and b = Mat.get t 0 1
  and c = Mat.get t 1 0
  and d = Mat.get t 1 1 in
  if a = 1 || d = 1 then two_factor_result (Mat.identity 2) t
  else if c <> 0 && (a - 1) mod c = 0 then
    (* conjugating by U(-lambda), lambda = (a-1)/c, sends a to
       a - lambda c = 1 *)
    two_factor_result (Elementary.u2 (-((a - 1) / c))) t
  else if b <> 0 && (d - 1) mod b = 0 then
    (* transposed condition: conjugate by L(-(d-1)/b) *)
    two_factor_result (Elementary.l2 (-((d - 1) / b))) t
  else None

let search ~bound t =
  if Mat.det t <> 1 || Mat.rows t <> 2 || Mat.cols t <> 2 then
    invalid_arg "Similarity.search: expected 2x2, det 1";
  let rec go = function
    | [] -> None
    | m :: rest -> (
      match two_factor_result m t with Some r -> Some r | None -> go rest)
  in
  go (Unimodular.enumerate_2x2 ~bound)

let discriminant t =
  let tr = Mat.trace t in
  (tr * tr) - 4
