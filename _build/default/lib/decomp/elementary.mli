(** Elementary data-flow matrices (paper §4.1).

    An elementary matrix is the identity with one modified row: the
    communication it generates only changes one coordinate of the
    virtual processor, i.e. it is parallel to one axis of the grid.
    In 2-D, [l l2] is a {e horizontal} communication
    [[[1,0],[l,1]]] and [u2 k] a {e vertical} one [[[1,k],[0,1]]]. *)

open Linalg

val l2 : int -> Mat.t
(** [[[1, 0], [l, 1]]]. *)

val u2 : int -> Mat.t
(** [[[1, k], [0, 1]]]. *)

val make : dim:int -> axis:int -> int array -> Mat.t
(** Identity with row [axis] replaced by [coeffs]; [coeffs.(axis)] must
    be non-zero (it is the determinant).  With [coeffs.(axis) = 1] this
    is the paper's elementary [L_i]; other diagonal values give the
    {e unirow} matrices of §5.5. *)

val is_elementary : Mat.t -> bool
(** Identity except for (at most) one row whose diagonal entry is 1. *)

val axis_of : Mat.t -> int option
(** The axis of an elementary matrix; [None] for the identity or
    non-elementary matrices. *)

val is_unirow : Mat.t -> bool
(** Identity except for one row (any non-zero diagonal entry there). *)

val product : Mat.t list -> Mat.t
(** Left-to-right product; @raise Invalid_argument on empty list. *)
