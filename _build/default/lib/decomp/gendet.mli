(** Decomposition of data-flow matrices with arbitrary non-zero
    determinant (paper §5.5).

    Generalizing elementary matrices to {e unirow} matrices (identity
    except for one row, whose diagonal entry carries a factor of the
    determinant), every non-singular integer matrix factors as a
    product of unirow matrices: the Euclidean phase reduces the matrix
    to upper-triangular form with determinant-1 elementary operations,
    and the triangle splits into one unirow matrix per row.  Each
    factor still generates communication parallel to a single axis, so
    the grouped partition applies. *)

open Linalg

val decompose : Mat.t -> Mat.t list
(** Factors multiply (left to right) to the input.  All factors satisfy
    {!Elementary.is_unirow}.
    @raise Invalid_argument on singular or non-square input. *)

val decompose_columns : Mat.t -> Mat.t list
(** The dual factorization into {e unicolumn} matrices (identity except
    for one column), obtained from the unirow factorization of the
    transpose.  A unicolumn factor generates communication where a
    single source coordinate feeds the others. *)

val is_unicolumn : Mat.t -> bool
