(** Grouped-partition inspection helpers (paper Figures 6 and 7). *)

val classes : k:int -> nv:int -> int list list
(** The class decomposition: [classes ~k:3 ~nv:12] is
    [[0;3;6;9]; [1;4;7;10]; [2;5;8;11]] — the middle row of Figure 6. *)

val distribution_row : k:int -> nv:int -> np:int -> (int * int) list
(** [(virtual index, physical processor)] in distribution order: the
    bottom rows of Figure 6. *)

val figure6 : Format.formatter -> k:int -> nv:int -> np:int -> unit
(** Render the three rows of Figure 6 (initial indices, grouped order,
    block mapping). *)

val figure7 :
  Format.formatter ->
  vgrid:int * int ->
  pgrid:int * int ->
  ku:int ->
  kl:int ->
  unit
(** Figure 7: a 2-D virtual grid mapped with the grouped partition in
    both dimensions, suited to a product [L U] with parameters [kl]
    (vertical, rows) and [ku] (horizontal, columns). *)
