(** HPF DISTRIBUTE directive syntax for layouts.

    [(BLOCK, CYCLIC(4))] and friends; the grouped partition is printed
    as the extension keyword [GROUPED(k)].  Round-trips with
    {!parse}. *)

val print : Layout.t -> string

val parse : string -> (Layout.t, string) result

val parse_exn : string -> Layout.t
(** @raise Invalid_argument on syntax errors. *)
