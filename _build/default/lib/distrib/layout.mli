(** Folding a virtual processor grid onto a physical grid.

    Standard HPF-style per-dimension schemes plus the paper's
    {e grouped partition} (§5.3): for an elementary communication of
    parameter [k] ([i -> i + k j]), virtual processors are grouped into
    [k] classes ([class c = i mod k]); communication only happens
    within a class, so classes are laid out contiguously (sort by
    [(i mod k, i / k)]) and the reordered sequence is distributed by
    blocks.  Intra-class shifts then become near-neighbour traffic. *)

type scheme =
  | Block
  | Cyclic
  | Cyclic_block of int
  | Grouped of int  (** the class count [k] *)

type t = scheme array
(** One scheme per virtual-grid dimension. *)

val place1d : scheme -> nv:int -> np:int -> int -> int
(** Physical coordinate of a virtual index. *)

val position1d : scheme -> nv:int -> int -> int
(** The linear position of a virtual index in the distribution order
    (identity except for [Grouped]). *)

val place :
  t -> vgrid:int array -> topo:Machine.Topology.t -> int array -> int
(** Physical rank of a virtual coordinate.
    @raise Invalid_argument on dimension mismatch. *)

val local_indices : scheme -> nv:int -> np:int -> int -> int list
(** The virtual indices owned by one physical coordinate — the local
    iteration set a code generator would loop over. *)

val all_block : int -> t
val all_cyclic : int -> t

val pp_scheme : Format.formatter -> scheme -> unit
