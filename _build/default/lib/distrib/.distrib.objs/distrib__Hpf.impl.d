lib/distrib/hpf.ml: Array Buffer Layout List Printf String
