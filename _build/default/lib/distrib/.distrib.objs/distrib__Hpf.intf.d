lib/distrib/hpf.mli: Layout
