lib/distrib/grouped.ml: Format Layout List
