lib/distrib/grouped.mli: Format
