lib/distrib/foldsim.ml: Array Layout Linalg List Machine Mat
