lib/distrib/redistribute.ml: Foldsim Layout Machine
