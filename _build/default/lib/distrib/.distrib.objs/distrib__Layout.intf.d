lib/distrib/layout.mli: Format Machine
