lib/distrib/redistribute.mli: Layout Linalg Machine Mat
