lib/distrib/layout.ml: Array Format Machine
