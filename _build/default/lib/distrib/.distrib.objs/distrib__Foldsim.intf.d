lib/distrib/foldsim.mli: Layout Linalg Machine Mat
