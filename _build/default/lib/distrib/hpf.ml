let print (layout : Layout.t) =
  let scheme = function
    | Layout.Block -> "BLOCK"
    | Layout.Cyclic -> "CYCLIC"
    | Layout.Cyclic_block b -> Printf.sprintf "CYCLIC(%d)" b
    | Layout.Grouped k -> Printf.sprintf "GROUPED(%d)" k
  in
  "(" ^ String.concat ", " (Array.to_list (Array.map scheme layout)) ^ ")"

let parse_scheme s =
  let s = String.trim s in
  let upper = String.uppercase_ascii s in
  let param prefix =
    (* PREFIX(k) *)
    let plen = String.length prefix in
    if
      String.length upper > plen + 2
      && String.sub upper 0 (plen + 1) = prefix ^ "("
      && upper.[String.length upper - 1] = ')'
    then int_of_string_opt (String.sub s (plen + 1) (String.length s - plen - 2))
    else None
  in
  match upper with
  | "BLOCK" -> Ok Layout.Block
  | "CYCLIC" -> Ok Layout.Cyclic
  | _ -> (
    match param "CYCLIC" with
    | Some b when b > 0 -> Ok (Layout.Cyclic_block b)
    | Some _ -> Error "CYCLIC block size must be positive"
    | None -> (
      match param "GROUPED" with
      | Some k when k > 0 -> Ok (Layout.Grouped k)
      | Some _ -> Error "GROUPED class count must be positive"
      | None -> Error (Printf.sprintf "unknown distribution %S" s)))

let parse text =
  let text = String.trim text in
  let n = String.length text in
  if n < 2 || text.[0] <> '(' || text.[n - 1] <> ')' then
    Error "expected a parenthesized distribution list"
  else begin
    let inner = String.sub text 1 (n - 2) in
    (* split on commas that are not inside parentheses *)
    let parts = ref [] and buf = Buffer.create 16 and depth = ref 0 in
    String.iter
      (fun c ->
        match c with
        | '(' ->
          incr depth;
          Buffer.add_char buf c
        | ')' ->
          decr depth;
          Buffer.add_char buf c
        | ',' when !depth = 0 ->
          parts := Buffer.contents buf :: !parts;
          Buffer.clear buf
        | c -> Buffer.add_char buf c)
      inner;
    parts := Buffer.contents buf :: !parts;
    let parts = List.rev !parts in
    let rec go acc = function
      | [] -> Ok (Array.of_list (List.rev acc))
      | p :: rest -> (
        match parse_scheme p with
        | Ok s -> go (s :: acc) rest
        | Error e -> Error e)
    in
    go [] parts
  end

let parse_exn text =
  match parse text with Ok l -> l | Error e -> invalid_arg ("Hpf.parse: " ^ e)
