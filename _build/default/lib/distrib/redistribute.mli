(** Changing the data distribution at runtime.

    The grouped partition is tailored to one elementary communication;
    if the data currently lives under BLOCK or CYCLIC, adopting it
    costs a redistribution (an all-to-all-ish remap).  This module
    prices that remap and answers the adoption question the paper
    leaves implicit: after how many repetitions of the communication
    does the grouped partition pay for itself? *)

open Linalg

val messages :
  vgrid:int array ->
  topo:Machine.Topology.t ->
  from_layout:Layout.t ->
  to_layout:Layout.t ->
  bytes:int ->
  Machine.Message.t list
(** One message per virtual processor whose physical home changes. *)

val time :
  Machine.Models.t ->
  vgrid:int array ->
  from_layout:Layout.t ->
  to_layout:Layout.t ->
  ?bytes:int ->
  unit ->
  Machine.Netsim.stats

val break_even :
  Machine.Models.t ->
  vgrid:int array ->
  from_layout:Layout.t ->
  to_layout:Layout.t ->
  flow:Mat.t ->
  ?bytes:int ->
  unit ->
  int option
(** Smallest number of repetitions of the [flow] communication for
    which [redistribution + n * time(to)] beats [n * time(from)];
    [None] when the target layout never wins. *)
