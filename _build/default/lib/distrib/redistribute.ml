let messages ~vgrid ~topo ~from_layout ~to_layout ~bytes =
  let msgs = ref [] in
  Machine.Patterns.iter_box vgrid (fun v ->
      let src = Layout.place from_layout ~vgrid ~topo v in
      let dst = Layout.place to_layout ~vgrid ~topo v in
      if src <> dst then msgs := Machine.Message.make ~src ~dst ~bytes :: !msgs);
  !msgs

let time model ~vgrid ~from_layout ~to_layout ?(bytes = 8) () =
  let topo = model.Machine.Models.topo in
  Machine.Models.run model (messages ~vgrid ~topo ~from_layout ~to_layout ~bytes)

let break_even model ~vgrid ~from_layout ~to_layout ~flow ?(bytes = 8) () =
  let redist = (time model ~vgrid ~from_layout ~to_layout ~bytes ()).Machine.Netsim.time in
  let comm layout =
    (Foldsim.time model ~layout ~vgrid ~flow ~bytes ()).Machine.Netsim.time
  in
  let t_from = comm from_layout and t_to = comm to_layout in
  if t_to >= t_from then None
  else
    (* redist + n t_to < n t_from  =>  n > redist / (t_from - t_to) *)
    Some (1 + int_of_float (redist /. (t_from -. t_to)))
