type scheme = Block | Cyclic | Cyclic_block of int | Grouped of int

type t = scheme array

let ceil_div a b = (a + b - 1) / b

let position1d scheme ~nv v =
  match scheme with
  | Block | Cyclic | Cyclic_block _ -> v
  | Grouped k ->
    if k <= 0 then invalid_arg "Layout.position1d: k <= 0";
    let c = v mod k and m = v / k in
    let class_size = ceil_div nv k in
    (c * class_size) + m

let place1d scheme ~nv ~np v =
  if v < 0 || v >= nv then invalid_arg "Layout.place1d: virtual index out of range";
  match scheme with
  | Block -> min (np - 1) (v / ceil_div nv np)
  | Cyclic -> v mod np
  | Cyclic_block b ->
    if b <= 0 then invalid_arg "Layout.place1d: block size <= 0";
    v / b mod np
  | Grouped k ->
    let pos = position1d (Grouped k) ~nv v in
    let padded = k * ceil_div nv k in
    min (np - 1) (pos / ceil_div padded np)

let place t ~vgrid ~topo vcoord =
  let n = Array.length vgrid in
  if Array.length t <> n || Array.length vcoord <> n || Machine.Topology.ndims topo <> n
  then invalid_arg "Layout.place: dimension mismatch";
  let pcoord =
    Array.init n (fun d ->
        place1d t.(d) ~nv:vgrid.(d) ~np:(Machine.Topology.dim topo d) vcoord.(d))
  in
  Machine.Topology.rank_of topo pcoord

let local_indices scheme ~nv ~np p =
  let rec go v acc =
    if v < 0 then acc
    else go (v - 1) (if place1d scheme ~nv ~np v = p then v :: acc else acc)
  in
  go (nv - 1) []

let all_block n = Array.make n Block
let all_cyclic n = Array.make n Cyclic

let pp_scheme ppf = function
  | Block -> Format.fprintf ppf "BLOCK"
  | Cyclic -> Format.fprintf ppf "CYCLIC"
  | Cyclic_block b -> Format.fprintf ppf "CYCLIC(%d)" b
  | Grouped k -> Format.fprintf ppf "GROUPED(%d)" k
