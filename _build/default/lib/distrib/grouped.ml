let classes ~k ~nv =
  List.init k (fun c ->
      let rec members i acc = if i >= nv then List.rev acc else members (i + k) (i :: acc) in
      members c [])

let distribution_row ~k ~nv ~np =
  let order = List.concat (classes ~k ~nv) in
  List.map (fun v -> (v, Layout.place1d (Layout.Grouped k) ~nv ~np v)) order

let figure6 ppf ~k ~nv ~np =
  Format.fprintf ppf "Initial indices:      ";
  for v = 0 to nv - 1 do
    Format.fprintf ppf "%3d" v
  done;
  Format.fprintf ppf "@\nGrouped (k = %d):      " k;
  List.iter
    (fun cls -> List.iter (fun v -> Format.fprintf ppf "%3d" v) cls)
    (classes ~k ~nv);
  Format.fprintf ppf "@\nPhysical (P = %d):     " np;
  List.iter (fun (_, p) -> Format.fprintf ppf "%3d" p) (distribution_row ~k ~nv ~np);
  Format.fprintf ppf "@\n"

let figure7 ppf ~vgrid:(nvi, nvj) ~pgrid:(npi, npj) ~ku ~kl =
  Format.fprintf ppf
    "virtual %dx%d onto physical %dx%d, GROUPED(%d) x GROUPED(%d)@\n" nvi nvj npi
    npj ku kl;
  for j = nvj - 1 downto 0 do
    for i = 0 to nvi - 1 do
      let pi = Layout.place1d (Layout.Grouped ku) ~nv:nvi ~np:npi i in
      let pj = Layout.place1d (Layout.Grouped kl) ~nv:nvj ~np:npj j in
      Format.fprintf ppf " %d,%d" pi pj
    done;
    Format.fprintf ppf "@\n"
  done
