(* Tests for the process-mapping subsystem: the Volgraph accumulator,
   the sparse-QAP search invariants (validity, cost ordering,
   seed determinism, pool indifference), a hand-computed 2x2-grid
   golden, and the zero-cost guarantee of the [?mapping] hooks. *)

(* ------------------------------------------------------------------ *)
(* Volgraph                                                            *)
(* ------------------------------------------------------------------ *)

let msg src dst bytes = Machine.Message.make ~src ~dst ~bytes

let test_volgraph_of_messages () =
  let vol =
    Machine.Volgraph.sorted
      (Machine.Volgraph.of_messages
         [ msg 0 1 10; msg 0 1 5; msg 2 2 7; msg 1 0 3 ])
  in
  (* duplicate (src, dst) pairs are summed; the two directions stay
     distinct; local traffic is kept *)
  Alcotest.(check (list (pair (pair int int) int)))
    "summed per directed pair"
    [ ((0, 1), 15); ((1, 0), 3); ((2, 2), 7) ]
    vol;
  Alcotest.(check int) "total counts everything" 25 (Machine.Volgraph.total vol);
  Alcotest.(check (list (pair (pair int int) int)))
    "nonlocal drops the diagonal"
    [ ((0, 1), 15); ((1, 0), 3) ]
    (Machine.Volgraph.nonlocal vol)

let test_volgraph_coalesce_agrees () =
  (* Netsim's message coalescing is the same accumulation: one message
     per pair, bytes summed *)
  let msgs = [ msg 0 1 10; msg 3 2 4; msg 0 1 1 ] in
  let coalesced = Machine.Netsim.coalesce_messages msgs in
  let as_pairs =
    List.sort compare
      (List.map
         (fun (m : Machine.Message.t) ->
           ((m.Machine.Message.src, m.Machine.Message.dst), m.Machine.Message.bytes))
         coalesced)
  in
  Alcotest.(check (list (pair (pair int int) int)))
    "coalesce = volgraph" [ ((0, 1), 11); ((3, 2), 4) ] as_pairs

(* ------------------------------------------------------------------ *)
(* 2x2-grid golden: the optimum is known by hand                       *)
(* ------------------------------------------------------------------ *)

(* On a 2x2 mesh (0=(0,0), 1=(0,1), 2=(1,0), 3=(1,1)) the diagonals
   0-3 and 1-2 are the only pairs at distance 2.  With volume 100 on
   (0,3) and 1 on (1,2), the identity embedding pays 2*100 + 2*1 =
   202 hop-bytes; any placement making both pairs adjacent pays
   1*100 + 1*1 = 101, the optimum.  The search must find it. *)
let test_grid_golden () =
  let topo = Machine.Topology.make ~torus:false [| 2; 2 |] in
  let vol = [ ((0, 3), 100); ((1, 2), 1) ] in
  let id = Mapping.identity 4 in
  Alcotest.(check int) "identity pays the diagonals" 202
    (Mapping.hop_bytes topo vol id);
  let s = Mapping.search ~seed:0 topo vol in
  Alcotest.(check bool) "search returns a permutation" true (Mapping.is_valid s);
  Alcotest.(check int) "search finds the optimum" 101
    (Mapping.hop_bytes topo vol s);
  Alcotest.(check int) "0 and 3 end up adjacent" 1
    (Machine.Route.hops topo ~src:s.(0) ~dst:s.(3));
  Alcotest.(check int) "1 and 2 end up adjacent" 1
    (Machine.Route.hops topo ~src:s.(1) ~dst:s.(2));
  (* greedy alone already beats identity here *)
  Alcotest.(check bool) "greedy <= identity" true
    (Mapping.hop_bytes topo vol (Mapping.greedy topo vol) <= 202)

(* ------------------------------------------------------------------ *)
(* qcheck invariants                                                   *)
(* ------------------------------------------------------------------ *)

(* A random mapping instance: a small mesh or torus plus raw traffic
   whose endpoints are folded into range. *)
let case_gen =
  QCheck.Gen.(
    map3
      (fun torus dims raw -> (torus, dims, raw))
      bool
      (oneofl [ [| 2; 2 |]; [| 4; 2 |]; [| 3; 3 |]; [| 4; 4 |] ])
      (list_size (int_range 0 30)
         (pair (pair (int_range 0 15) (int_range 0 15)) (int_range 0 512))))

let case_print (torus, dims, raw) =
  Printf.sprintf "torus=%b dims=%dx%d msgs=%d" torus dims.(0) dims.(1)
    (List.length raw)

let case_arb = QCheck.make ~print:case_print case_gen

let instance (torus, dims, raw) =
  let topo = Machine.Topology.make ~torus dims in
  let n = Machine.Topology.size topo in
  let vol =
    Machine.Volgraph.of_messages
      (List.map (fun ((s, d), b) -> msg (s mod n) (d mod n) b) raw)
  in
  (topo, vol)

let prop_search_valid =
  QCheck.Test.make ~count:60 ~name:"search result is a valid permutation"
    case_arb (fun case ->
      let topo, vol = instance case in
      Mapping.is_valid (Mapping.search ~seed:3 ~restarts:2 topo vol))

let prop_cost_ordering =
  QCheck.Test.make ~count:60 ~name:"search <= greedy <= identity hop-bytes"
    case_arb (fun case ->
      let topo, vol = instance case in
      let cost p = Mapping.hop_bytes topo vol p in
      let id = cost (Mapping.identity (Machine.Topology.size topo)) in
      let gr = cost (Mapping.greedy topo vol) in
      let se = cost (Mapping.search ~seed:1 ~restarts:2 topo vol) in
      se <= gr && gr <= id)

let prop_seed_deterministic =
  QCheck.Test.make ~count:30
    ~name:"same seed is byte-identical, sequential or pooled" case_arb
    (fun case ->
      let topo, vol = instance case in
      let s1 = Mapping.search ~seed:11 ~restarts:4 topo vol in
      let s2 = Mapping.search ~seed:11 ~restarts:4 topo vol in
      let sp =
        Mapping.search ~pool:(Par.Shared.get ~jobs:4) ~seed:11 ~restarts:4 topo
          vol
      in
      s1 = s2 && s1 = sp)

let prop_apply_preserves_traffic =
  QCheck.Test.make ~count:60 ~name:"apply permutes endpoints, keeps bytes"
    case_arb (fun case ->
      let topo, vol = instance case in
      let n = Machine.Topology.size topo in
      let msgs =
        List.map (fun ((s, d), b) -> msg s d b) (Machine.Volgraph.nonlocal vol)
      in
      let perm = Mapping.search ~seed:5 ~restarts:1 topo vol in
      let mapped = Mapping.apply perm msgs in
      List.length mapped = List.length msgs
      && List.for_all2
           (fun (a : Machine.Message.t) (b : Machine.Message.t) ->
             b.Machine.Message.src = perm.(a.Machine.Message.src)
             && b.Machine.Message.dst = perm.(a.Machine.Message.dst)
             && b.Machine.Message.bytes = a.Machine.Message.bytes
             && a.Machine.Message.src < n
             && a.Machine.Message.dst < n)
           msgs mapped)

(* ------------------------------------------------------------------ *)
(* Zero-cost and no-harm guarantees of the ?mapping hooks              *)
(* ------------------------------------------------------------------ *)

let example1_plan () =
  let w = Resopt.Workloads.find "example1" in
  (Resopt.Pipeline.run ~m:2 ~schedule:w.Resopt.Workloads.schedule
     w.Resopt.Workloads.nest)
    .Resopt.Pipeline.plan

let test_identity_mapping_is_free () =
  let plan = example1_plan () in
  let cm5 = Machine.Models.cm5 () in
  let plain = (Resopt.Cost.of_plan cm5 plan).Resopt.Cost.total in
  let under_id =
    (Resopt.Cost.of_plan ~mapping:(Mapping.spec Mapping.Identity) cm5 plan)
      .Resopt.Cost.total
  in
  Alcotest.(check (float 1e-9)) "identity mapping prices identically" plain
    under_id;
  (* t3d has no 2-D simulation grid: any mapping is a no-op there *)
  Alcotest.(check bool) "t3d has no simulation grid" true
    (Resopt.Cost.sim_vgrid (Machine.Models.t3d ()) = None);
  let t3d = Machine.Models.t3d () in
  let p = (Resopt.Cost.of_plan t3d plan).Resopt.Cost.total in
  let m =
    (Resopt.Cost.of_plan
       ~mapping:(Mapping.spec ~restarts:0 Mapping.Search)
       t3d plan)
      .Resopt.Cost.total
  in
  Alcotest.(check (float 1e-9)) "mapping is a no-op on t3d" p m

let test_search_mapping_never_hurts () =
  let plan = example1_plan () in
  let cm5 = Machine.Models.cm5 () in
  let plain = (Resopt.Cost.of_plan cm5 plan).Resopt.Cost.total in
  let searched =
    (Resopt.Cost.of_plan
       ~mapping:(Mapping.spec ~restarts:0 Mapping.Search)
       cm5 plan)
      .Resopt.Cost.total
  in
  Alcotest.(check bool)
    (Printf.sprintf "searched %.1f <= plain %.1f" searched plain)
    true
    (searched <= plain)

let contains re s =
  try
    ignore (Str.search_forward (Str.regexp_string re) s 0);
    true
  with Not_found -> false

let test_sweep_gain_map_column () =
  let workloads = [ Resopt.Workloads.find "example1" ] in
  let models = [ Machine.Models.cm5 () ] in
  let plain_rows = Resopt.Sweep.run ~models ~workloads () in
  let plain_csv = Resopt.Sweep.to_csv plain_rows in
  Alcotest.(check bool) "no gain_map column without mapping" false
    (contains "gain_map" plain_csv);
  Alcotest.(check bool) "rows carry no map_gain" true
    (List.for_all (fun r -> r.Resopt.Sweep.map_gain = None) plain_rows);
  let rows =
    Resopt.Sweep.run ~models ~workloads
      ~mapping:(Mapping.spec ~restarts:0 Mapping.Search)
      ()
  in
  let csv = Resopt.Sweep.to_csv rows in
  Alcotest.(check bool) "gain_map column with mapping" true
    (contains ",gain_map" csv);
  List.iter
    (fun r ->
      match r.Resopt.Sweep.map_gain with
      | None -> Alcotest.fail "mapped sweep row without map_gain"
      | Some g ->
        Alcotest.(check bool)
          (Printf.sprintf "%s gain_map %.3f >= 1" r.Resopt.Sweep.model g)
          true (g >= 1.0))
    rows;
  (* the deterministic columns are unchanged by the mapping pricing *)
  let strip_last_col csv =
    String.concat "\n"
      (List.map
         (fun line ->
           match String.rindex_opt line ',' with
           | Some i -> String.sub line 0 i
           | None -> line)
         (String.split_on_char '\n' csv))
  in
  Alcotest.(check string) "mapping only appends a column" plain_csv
    (strip_last_col csv)

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "mapping"
    [
      ( "volgraph",
        [
          Alcotest.test_case "of_messages sums pairs" `Quick
            test_volgraph_of_messages;
          Alcotest.test_case "netsim coalesce agrees" `Quick
            test_volgraph_coalesce_agrees;
        ] );
      ("golden", [ Alcotest.test_case "2x2 grid optimum" `Quick test_grid_golden ]);
      ( "invariants",
        [
          QCheck_alcotest.to_alcotest prop_search_valid;
          QCheck_alcotest.to_alcotest prop_cost_ordering;
          QCheck_alcotest.to_alcotest prop_seed_deterministic;
          QCheck_alcotest.to_alcotest prop_apply_preserves_traffic;
        ] );
      ( "zero-cost",
        [
          Alcotest.test_case "identity mapping is free" `Quick
            test_identity_mapping_is_free;
          Alcotest.test_case "search never hurts example1" `Quick
            test_search_mapping_never_hurts;
          Alcotest.test_case "sweep gain_map column" `Quick
            test_sweep_gain_map_column;
        ] );
    ]
