(* Tests for the Obs instrumentation library (spans, metrics,
   exporters), the Eventsim per-cycle sampler, the Sweep time_ms
   column, and the previously untested Machine.Trace renderers. *)

(* A deterministic clock: each reading advances time by one second, so
   every span has a predictable, non-zero duration. *)
let install_fake_clock () =
  let t = ref 0.0 in
  Obs.set_clock (fun () ->
      t := !t +. 1.0;
      !t)

let fresh () =
  Obs.reset ();
  Obs.enable ();
  install_fake_clock ()

let teardown () =
  Obs.reset ();
  Obs.disable ();
  Obs.set_clock Sys.time

(* ------------------------------------------------------------------ *)
(* A minimal JSON well-formedness checker (recursive descent).         *)
(* ------------------------------------------------------------------ *)

exception Bad_json of string

let check_json s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Bad_json (Printf.sprintf "%s at %d" msg !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while !pos < n && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false) do
      advance ()
    done
  in
  let expect c =
    if peek () = Some c then advance () else fail (Printf.sprintf "expected %c" c)
  in
  let parse_string () =
    expect '"';
    let rec go () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' ->
        advance ();
        (match peek () with
        | Some ('"' | '\\' | '/' | 'b' | 'f' | 'n' | 'r' | 't') -> advance ()
        | Some 'u' ->
          advance ();
          for _ = 1 to 4 do
            match peek () with
            | Some ('0' .. '9' | 'a' .. 'f' | 'A' .. 'F') -> advance ()
            | _ -> fail "bad unicode escape"
          done
        | _ -> fail "bad escape");
        go ()
      | Some c when Char.code c < 0x20 -> fail "control char in string"
      | Some _ ->
        advance ();
        go ()
    in
    go ()
  in
  let parse_number () =
    let digits () =
      match peek () with
      | Some ('0' .. '9') ->
        while (match peek () with Some ('0' .. '9') -> true | _ -> false) do
          advance ()
        done
      | _ -> fail "expected digit"
    in
    if peek () = Some '-' then advance ();
    digits ();
    if peek () = Some '.' then begin
      advance ();
      digits ()
    end;
    match peek () with
    | Some ('e' | 'E') ->
      advance ();
      (match peek () with Some ('+' | '-') -> advance () | _ -> ());
      digits ()
    | _ -> ()
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | Some '"' -> parse_string ()
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then advance ()
      else begin
        let rec members () =
          skip_ws ();
          parse_string ();
          skip_ws ();
          expect ':';
          parse_value ();
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            members ()
          | Some '}' -> advance ()
          | _ -> fail "expected , or }"
        in
        members ()
      end
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then advance ()
      else begin
        let rec elements () =
          parse_value ();
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            elements ()
          | Some ']' -> advance ()
          | _ -> fail "expected , or ]"
        in
        elements ()
      end
    | Some ('-' | '0' .. '9') -> parse_number ()
    | Some 't' -> String.iter expect "true"
    | Some 'f' -> String.iter expect "false"
    | Some 'n' -> String.iter expect "null"
    | _ -> fail "unexpected character"
  in
  parse_value ();
  skip_ws ();
  if !pos <> n then fail "trailing garbage"

let valid_json name s =
  match check_json s with
  | () -> ()
  | exception Bad_json msg -> Alcotest.failf "%s: invalid JSON: %s\n%s" name msg s

(* ------------------------------------------------------------------ *)
(* Spans                                                               *)
(* ------------------------------------------------------------------ *)

let test_span_nesting () =
  fresh ();
  let v =
    Obs.with_span "outer" (fun () ->
        Obs.with_span "inner" (fun () -> 21) * 2)
  in
  Alcotest.(check int) "value passed through" 42 v;
  match Obs.spans () with
  | [ inner; outer ] ->
    Alcotest.(check string) "inner first (completion order)" "inner"
      inner.Obs.span_name;
    Alcotest.(check string) "outer second" "outer" outer.Obs.span_name;
    Alcotest.(check int) "outer depth" 0 outer.Obs.depth;
    Alcotest.(check int) "inner depth" 1 inner.Obs.depth;
    Alcotest.(check bool) "inner starts after outer" true
      (inner.Obs.ts_us >= outer.Obs.ts_us);
    Alcotest.(check bool) "inner contained in outer" true
      (inner.Obs.ts_us +. inner.Obs.dur_us
      <= outer.Obs.ts_us +. outer.Obs.dur_us);
    teardown ()
  | l -> Alcotest.failf "expected 2 spans, got %d" (List.length l)

let test_span_exception () =
  fresh ();
  (try
     Obs.with_span "boom" (fun () -> failwith "expected")
   with Failure _ -> ());
  Alcotest.(check int) "span recorded despite raise" 1 (List.length (Obs.spans ()));
  (* depth must be restored so later spans are not mis-nested *)
  Obs.with_span "after" (fun () -> ());
  let after = List.nth (Obs.spans ()) 1 in
  Alcotest.(check int) "depth restored" 0 after.Obs.depth;
  teardown ()

let test_disabled_is_noop () =
  Obs.reset ();
  Obs.disable ();
  let v = Obs.with_span "invisible" (fun () -> 7) in
  Obs.incr "invisible_counter";
  Obs.observe "invisible_histo" 1.0;
  Obs.set_gauge "invisible_gauge" 1.0;
  Obs.point "invisible_point" ~ts:0.0 1.0;
  Alcotest.(check int) "value passed through" 7 v;
  Alcotest.(check int) "no spans" 0 (List.length (Obs.spans ()));
  Alcotest.(check int) "no counter" 0 (Obs.counter "invisible_counter");
  Alcotest.(check bool) "no histogram" true (Obs.histogram "invisible_histo" = None);
  Alcotest.(check bool) "no gauge" true (Obs.gauge "invisible_gauge" = None)

let test_time_ms_works_when_disabled () =
  Obs.reset ();
  Obs.disable ();
  install_fake_clock ();
  let v, ms = Obs.time_ms (fun () -> "done") in
  Alcotest.(check string) "value" "done" v;
  (* fake clock: one tick of 1 s between the two readings *)
  Alcotest.(check (float 1e-6)) "elapsed" 1000.0 ms;
  teardown ()

(* ------------------------------------------------------------------ *)
(* Metrics                                                             *)
(* ------------------------------------------------------------------ *)

let test_counter_arithmetic () =
  fresh ();
  Alcotest.(check int) "unset counter is 0" 0 (Obs.counter "c");
  Obs.incr "c";
  Obs.incr "c";
  Obs.incr ~by:40 "c";
  Alcotest.(check int) "1 + 1 + 40" 42 (Obs.counter "c");
  Obs.incr ~by:(-2) "c";
  Alcotest.(check int) "negative increments allowed" 40 (Obs.counter "c");
  teardown ()

let test_gauge_and_histogram () =
  fresh ();
  Obs.set_gauge "g" 1.5;
  Obs.set_gauge "g" 2.5;
  Alcotest.(check (option (float 1e-9))) "gauge keeps last" (Some 2.5) (Obs.gauge "g");
  List.iter (Obs.observe "h") [ 4.0; 1.0; 7.0 ];
  (match Obs.histogram "h" with
  | None -> Alcotest.fail "histogram missing"
  | Some h ->
    Alcotest.(check int) "count" 3 h.Obs.count;
    Alcotest.(check (float 1e-9)) "sum" 12.0 h.Obs.sum;
    Alcotest.(check (float 1e-9)) "min" 1.0 h.Obs.min_v;
    Alcotest.(check (float 1e-9)) "max" 7.0 h.Obs.max_v);
  teardown ()

(* ------------------------------------------------------------------ *)
(* Exporters                                                           *)
(* ------------------------------------------------------------------ *)

let record_some_activity () =
  fresh ();
  Obs.with_span "phase \"one\"\n" ~args:[ ("key", "va\\lue") ] (fun () ->
      Obs.with_span "phase2" (fun () -> Obs.incr "work.items"));
  Obs.point "queue" ~ts:10.0 3.0;
  Obs.set_gauge "temp" 36.6;
  Obs.observe "lat" 5.0

let test_chrome_trace_json () =
  record_some_activity ();
  let json = Obs.chrome_trace () in
  valid_json "chrome_trace" json;
  Alcotest.(check bool) "has traceEvents" true
    (String.length json > 20 && String.sub json 0 16 = "{\"traceEvents\":[");
  teardown ()

let test_jsonl_export () =
  record_some_activity ();
  let lines = String.split_on_char '\n' (String.trim (Obs.jsonl ())) in
  Alcotest.(check bool) "several lines" true (List.length lines >= 5);
  List.iter (valid_json "jsonl line") lines;
  teardown ()

let test_metrics_json () =
  record_some_activity ();
  valid_json "metrics_json" (Obs.metrics_json ());
  teardown ()

let test_summary_nonempty () =
  record_some_activity ();
  let s = Format.asprintf "%a" Obs.pp_summary () in
  List.iter
    (fun needle ->
      Alcotest.(check bool) ("summary mentions " ^ needle) true
        (let re = Str.regexp_string needle in
         try
           ignore (Str.search_forward re s 0);
           true
         with Not_found -> false))
    [ "spans:"; "counters:"; "gauges:"; "histograms:"; "work.items"; "phase2" ];
  teardown ()

let test_reset () =
  record_some_activity ();
  Obs.reset ();
  Alcotest.(check int) "no spans after reset" 0 (List.length (Obs.spans ()));
  Alcotest.(check int) "no counters after reset" 0 (Obs.counter "work.items");
  Alcotest.(check bool) "still enabled" true (Obs.enabled ());
  teardown ()

(* ------------------------------------------------------------------ *)
(* Pipeline integration: phases visible, counters consistent           *)
(* ------------------------------------------------------------------ *)

let test_pipeline_spans () =
  fresh ();
  let nest = Nestir.Paper_examples.example1 () in
  let r = Resopt.Pipeline.run ~m:2 nest in
  let names = List.map (fun s -> s.Obs.span_name) (Obs.spans ()) in
  List.iter
    (fun phase ->
      Alcotest.(check bool) ("span " ^ phase) true (List.mem phase names))
    [
      "alloc.access_graph";
      "alloc.branching";
      "alloc.readditions";
      "alloc.materialize";
      "pipeline.alloc";
      "pipeline.classify";
      "pipeline.rotate";
      "pipeline.decompose";
      "pipeline.run";
    ];
  Alcotest.(check int) "rotations counter matches result"
    (List.length r.Resopt.Pipeline.rotations)
    (Obs.counter "rotations_applied");
  Alcotest.(check bool) "some edges localized" true (Obs.counter "edges_localized" > 0);
  teardown ()

(* ------------------------------------------------------------------ *)
(* Eventsim sampler                                                    *)
(* ------------------------------------------------------------------ *)

let test_eventsim_sampler () =
  teardown ();
  (* Obs disabled: the sampler must still fire *)
  let topo = Machine.Topology.mesh2d ~p:4 ~q:4 in
  let msgs =
    List.init 12 (fun i ->
        Machine.Message.make ~src:(i mod 4) ~dst:(15 - (i mod 4)) ~bytes:512)
  in
  let samples = ref [] in
  let r =
    Machine.Eventsim.run
      ~sampler:(fun s -> samples := s :: !samples)
      ~sample_every:8 topo Machine.Eventsim.default_params msgs
  in
  Alcotest.(check int) "all delivered" 12 r.Machine.Eventsim.delivered;
  let samples = List.rev !samples in
  Alcotest.(check bool) "got samples" true (List.length samples > 1);
  let cycles = List.map (fun s -> s.Machine.Eventsim.cycle) samples in
  Alcotest.(check bool) "cycles increase" true
    (List.for_all2 ( < ) (List.filteri (fun i _ -> i < List.length cycles - 1) cycles)
       (List.tl cycles));
  List.iter
    (fun s ->
      Alcotest.(check bool) "sane sample" true
        (s.Machine.Eventsim.busy_links >= 0
        && s.Machine.Eventsim.max_queue_now >= 0
        && s.Machine.Eventsim.in_flight >= 0))
    samples;
  (* with Obs enabled, time-series points are recorded too *)
  fresh ();
  ignore (Machine.Eventsim.run ~sample_every:8 topo Machine.Eventsim.default_params msgs);
  Alcotest.(check bool) "eventsim counters" true (Obs.counter "eventsim.runs" = 1);
  let json = Obs.chrome_trace () in
  valid_json "eventsim trace" json;
  teardown ()

let test_eventsim_bad_sample_every () =
  Alcotest.check_raises "sample_every must be positive"
    (Invalid_argument "Eventsim.run: sample_every <= 0") (fun () ->
      ignore
        (Machine.Eventsim.run ~sample_every:0 (Machine.Topology.line 2)
           Machine.Eventsim.default_params []))

(* ------------------------------------------------------------------ *)
(* Sweep time_ms                                                       *)
(* ------------------------------------------------------------------ *)

let test_sweep_time_ms () =
  teardown ();
  let rows =
    Resopt.Sweep.run
      ~workloads:[ Resopt.Workloads.find "example1" ]
      ~models:[ Machine.Models.cm5 () ] ()
  in
  Alcotest.(check int) "one row" 1 (List.length rows);
  let row = List.hd rows in
  Alcotest.(check bool) "time_ms non-negative" true (row.Resopt.Sweep.time_ms >= 0.0);
  let table = Format.asprintf "%a" Resopt.Sweep.pp_table rows in
  Alcotest.(check bool) "table has time column" true
    (try
       ignore (Str.search_forward (Str.regexp_string "time ms") table 0);
       true
     with Not_found -> false)

(* ------------------------------------------------------------------ *)
(* Machine.Trace renderers                                             *)
(* ------------------------------------------------------------------ *)

let test_load_heatmap () =
  let topo = Machine.Topology.mesh2d ~p:2 ~q:4 in
  let msgs =
    [
      Machine.Message.make ~src:0 ~dst:5 ~bytes:100;
      Machine.Message.make ~src:3 ~dst:1 ~bytes:50;
      Machine.Message.make ~src:7 ~dst:7 ~bytes:999 (* local: excluded *);
    ]
  in
  let map = Machine.Trace.load_heatmap topo msgs in
  let lines = String.split_on_char '\n' (String.trim map) in
  Alcotest.(check int) "one row per mesh row" 2 (List.length lines);
  List.iter
    (fun l ->
      Alcotest.(check int) "4 columns, space-separated" 7 (String.length l))
    lines;
  (* rank 0 is the peak sender -> glyph 9; rank 3 sent half -> mid glyph;
     everyone else (incl. the local-only rank 7) is idle -> '.' *)
  let glyph rank =
    let row = List.nth lines (rank / 4) in
    row.[2 * (rank mod 4)]
  in
  Alcotest.(check char) "peak sender" '9' (glyph 0);
  Alcotest.(check char) "half-load sender" '5' (glyph 3);
  Alcotest.(check char) "idle node" '.' (glyph 1);
  Alcotest.(check char) "local-only node" '.' (glyph 7)

let test_load_heatmap_all_idle () =
  let topo = Machine.Topology.mesh2d ~p:2 ~q:2 in
  let map = Machine.Trace.load_heatmap topo [] in
  String.iter
    (fun c ->
      Alcotest.(check bool) "only idle glyphs" true
        (c = '.' || c = ' ' || c = '\n'))
    map

let test_link_table () =
  let topo = Machine.Topology.line 4 in
  let msgs =
    [
      Machine.Message.make ~src:0 ~dst:2 ~bytes:10;
      Machine.Message.make ~src:1 ~dst:2 ~bytes:5;
    ]
  in
  let table = Machine.Trace.link_table topo msgs in
  let lines = String.split_on_char '\n' (String.trim table) in
  (* links 0->1 (10 bytes) and 1->2 (15 bytes), sorted by load desc *)
  Alcotest.(check int) "two links" 2 (List.length lines);
  let parse line = Scanf.sscanf line " %d -> %d %d" (fun a b c -> (a, b, c)) in
  Alcotest.(check (triple int int int)) "hottest first" (1, 2, 15)
    (parse (List.nth lines 0));
  Alcotest.(check (triple int int int)) "then the feeder" (0, 1, 10)
    (parse (List.nth lines 1))

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "obs"
    [
      ( "spans",
        [
          Alcotest.test_case "nesting" `Quick test_span_nesting;
          Alcotest.test_case "exception safety" `Quick test_span_exception;
          Alcotest.test_case "disabled is a no-op" `Quick test_disabled_is_noop;
          Alcotest.test_case "time_ms when disabled" `Quick
            test_time_ms_works_when_disabled;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "counter arithmetic" `Quick test_counter_arithmetic;
          Alcotest.test_case "gauge and histogram" `Quick test_gauge_and_histogram;
        ] );
      ( "export",
        [
          Alcotest.test_case "chrome trace JSON" `Quick test_chrome_trace_json;
          Alcotest.test_case "jsonl" `Quick test_jsonl_export;
          Alcotest.test_case "metrics json" `Quick test_metrics_json;
          Alcotest.test_case "ascii summary" `Quick test_summary_nonempty;
          Alcotest.test_case "reset" `Quick test_reset;
        ] );
      ( "integration",
        [
          Alcotest.test_case "pipeline phase spans" `Quick test_pipeline_spans;
          Alcotest.test_case "eventsim sampler" `Quick test_eventsim_sampler;
          Alcotest.test_case "eventsim bad sample_every" `Quick
            test_eventsim_bad_sample_every;
          Alcotest.test_case "sweep time_ms" `Quick test_sweep_time_ms;
        ] );
      ( "trace-render",
        [
          Alcotest.test_case "load heatmap" `Quick test_load_heatmap;
          Alcotest.test_case "heatmap all idle" `Quick test_load_heatmap_all_idle;
          Alcotest.test_case "link table" `Quick test_link_table;
        ] );
    ]
