(* The scheduler profiler: a hand-computed utilization golden on a
   fake clock, collapsed-stack and diagnosis pins, GC-delta accounting
   units, and the no-observer-effect property (profiled runs produce
   byte-identical results, including under --jobs 4 and --cache). *)

let t = ref 0.0
let at ms = t := ms /. 1000.0 (* the clock is in seconds *)

let setup () =
  Obs.Profile.set_clock (fun () -> !t);
  t := 0.0;
  Obs.Profile.enable ();
  Obs.Profile.reset ()

let teardown () =
  Obs.Profile.reset ();
  Obs.Profile.disable ();
  Obs.Profile.set_clock Sys.time

(* The hand-computed timeline, all times in fake milliseconds:

     0..1    spawn event
     1..5    worker 0: chunk (2 items), nesting cell:a over 2..4
     1..9    worker 1: chunk (2 items)
     9..9.5  merge.obs        9.5..10  merge.cache

   wall = 10 ms, width = 2 so the budget is 20 ms; busy = 4 + 8 = 12,
   spawn = 1, merge = 1, idle = 20 - 14 = 6. *)
let scenario () =
  (* empty the minor heap so the few words the scenario allocates
     cannot trigger a collection mid-task: the GC columns are exactly
     zero *)
  Gc.minor ();
  Obs.Profile.note_pool ~jobs:4 ~width:2;
  at 0.0;
  Obs.Profile.event "spawn" (fun () -> at 1.0);
  Obs.Profile.with_worker 0 (fun () ->
      Obs.Profile.task "chunk" ~index:0 ~size:2 (fun () ->
          at 2.0;
          Obs.Profile.task "cell:a" (fun () -> at 4.0);
          at 5.0));
  Obs.Profile.with_worker 1 (fun () ->
      at 1.0;
      Obs.Profile.task "chunk" ~index:2 ~size:2 (fun () -> at 9.0));
  at 9.0;
  Obs.Profile.event "merge.obs" (fun () -> at 9.5);
  Obs.Profile.event "merge.cache" (fun () -> at 10.0)

(* ------------------------------------------------------------------ *)
(* Recorded data                                                       *)
(* ------------------------------------------------------------------ *)

let test_records () =
  setup ();
  scenario ();
  let tasks = Obs.Profile.tasks () in
  Alcotest.(check int) "3 tasks (2 top-level + 1 nested)" 3 (List.length tasks);
  let nested =
    List.find (fun t -> List.length t.Obs.Profile.t_stack = 2) tasks
  in
  Alcotest.(check (list string))
    "nested stack is outermost-first" [ "chunk"; "cell:a" ]
    nested.Obs.Profile.t_stack;
  Alcotest.(check (float 1e-6)) "nested start" 2000.0 nested.Obs.Profile.t_start_us;
  Alcotest.(check (float 1e-6)) "nested dur" 2000.0 nested.Obs.Profile.t_dur_us;
  Alcotest.(check int) "3 lifecycle events" 3
    (List.length (Obs.Profile.events ()));
  (match Obs.Profile.pool_shape () with
  | Some (4, 2) -> ()
  | _ -> Alcotest.fail "pool shape not recorded");
  let stats = Obs.Profile.worker_stats () in
  Alcotest.(check int) "2 workers" 2 (List.length stats);
  let w0 = List.nth stats 0 and w1 = List.nth stats 1 in
  Alcotest.(check int) "w0 top-level tasks" 1 w0.Obs.Profile.ws_tasks;
  Alcotest.(check int) "w0 items" 2 w0.Obs.Profile.ws_items;
  Alcotest.(check (float 1e-6))
    "w0 busy excludes nothing, counts top-level only" 4000.0
    w0.Obs.Profile.ws_busy_us;
  Alcotest.(check (float 1e-6)) "w1 busy" 8000.0 w1.Obs.Profile.ws_busy_us;
  teardown ()

let test_exception_still_records () =
  setup ();
  at 0.0;
  (try
     Obs.Profile.task "boom" (fun () ->
         at 3.0;
         failwith "boom")
   with Failure _ -> ());
  (match Obs.Profile.tasks () with
  | [ r ] ->
    Alcotest.(check (list string)) "label" [ "boom" ] r.Obs.Profile.t_stack;
    Alcotest.(check (float 1e-6)) "duration" 3000.0 r.Obs.Profile.t_dur_us
  | l -> Alcotest.fail (Printf.sprintf "expected 1 task, got %d" (List.length l)));
  teardown ()

(* ------------------------------------------------------------------ *)
(* Diagnosis                                                           *)
(* ------------------------------------------------------------------ *)

let test_diagnosis () =
  setup ();
  scenario ();
  let d = Option.get (Obs.Profile.diagnose ~cores:2 ()) in
  Alcotest.(check int) "jobs" 4 d.Obs.Profile.d_jobs;
  Alcotest.(check int) "width" 2 d.Obs.Profile.d_width;
  Alcotest.(check (float 1e-6)) "wall" 10_000.0 d.Obs.Profile.d_wall_us;
  Alcotest.(check (float 1e-6)) "budget = wall * width" 20_000.0
    d.Obs.Profile.d_budget_us;
  Alcotest.(check (float 1e-6)) "work" 12_000.0 d.Obs.Profile.d_work_us;
  Alcotest.(check (float 1e-6)) "gc (frozen clock => 0)" 0.0
    d.Obs.Profile.d_gc_us;
  Alcotest.(check (float 1e-6)) "spawn" 1000.0 d.Obs.Profile.d_spawn_us;
  Alcotest.(check (float 1e-6)) "merge" 1000.0 d.Obs.Profile.d_merge_us;
  Alcotest.(check (float 1e-6)) "idle = budget - covered" 6000.0
    d.Obs.Profile.d_idle_us;
  Alcotest.(check (float 1e-9)) "everything attributed" 1.0
    d.Obs.Profile.d_attributed;
  (* cost model by hand: items 4, 3 ms/item, spawn 1 ms/domain, merge
     0.5 ms/slot => pred(1) = 12.5 ms, pred(2) = 8 ms, pred(3) = 9.5:
     the measured optimum on 2 cores is 2 domains *)
  Alcotest.(check int) "recommended domains" 2 d.Obs.Profile.d_recommended;
  Alcotest.(check bool) "nothing recorded => no diagnosis" true
    (Obs.Profile.reset ();
     Obs.Profile.diagnose ~cores:2 () = None);
  teardown ()

(* ------------------------------------------------------------------ *)
(* Renderer pins                                                       *)
(* ------------------------------------------------------------------ *)

let report_golden =
  "parallel profile: jobs 4 (width 2), wall 10.000 ms, 2 tasks / 4 items\n\
   worker    busy ms  busy%  tasks  items   minor  major   promoted\n\
  \     0      4.000  40.0%      1      2       0      0          0\n\
  \     1      8.000  80.0%      1      2       0      0          0\n\
   timeline ('#' busy >= 50% of the column, '+' busy, '.' idle):\n\
  \  w0  |....+###################........................|\n\
  \  w1  |....+######################################+....|\n\
   task granularity: count 2, mean 6.000 ms, p50 4.000 / p95 8.000 / p99 8.000 ms\n\
   lifecycle: 1 spawns 1.000 ms, 2 merges 1.000 ms, 0 teardowns 0.000 ms\n\
   diagnosis (budget 2 x 10.000 ms = 20.000 ms):\n\
  \  work    60.0%       12.000 ms\n\
  \  gc       0.0%        0.000 ms\n\
  \  spawn    5.0%        1.000 ms\n\
  \  merge    5.0%        1.000 ms\n\
  \  idle    30.0%        6.000 ms\n\
  \  gc pressure: 0 minor + 0 major collections, 0 promoted words\n\
  \  attributed: 100.0% of the budget\n\
  \  recommended domains: 2\n"

let test_utilization_report () =
  setup ();
  scenario ();
  Alcotest.(check string) "report golden" report_golden
    (Obs.Profile.utilization_report ~cores:2 ());
  teardown ()

let collapsed_golden =
  "worker0;chunk 2000\nworker0;chunk;cell:a 2000\nworker1;chunk 8000\n"

let test_collapsed () =
  setup ();
  scenario ();
  (* exclusive time: worker 0's chunk is 4 ms inclusive minus the 2 ms
     nested cell *)
  Alcotest.(check string) "collapsed golden" collapsed_golden
    (Obs.Profile.collapsed ());
  teardown ()

let test_chrome_merge () =
  setup ();
  scenario ();
  let events = Obs.Profile.chrome_events () in
  Alcotest.(check int) "3 tasks + 3 lifecycle events" 6 (List.length events);
  let trace = Obs.chrome_trace () in
  let contains needle hay =
    let nl = String.length needle and hl = String.length hay in
    let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "profile rows merged into the Obs trace" true
    (contains "\"cat\":\"profile\"" trace);
  Alcotest.(check bool) "stacks exported" true
    (contains "\"stack\":\"chunk;cell:a\"" trace);
  teardown ()

let test_disabled_is_silent () =
  setup ();
  Obs.Profile.disable ();
  Obs.Profile.note_pool ~jobs:4 ~width:2;
  Obs.Profile.with_worker 1 (fun () ->
      Obs.Profile.task "chunk" (fun () -> at 5.0));
  Obs.Profile.event "spawn" (fun () -> at 6.0);
  Alcotest.(check int) "no tasks" 0 (List.length (Obs.Profile.tasks ()));
  Alcotest.(check int) "no events" 0 (List.length (Obs.Profile.events ()));
  Alcotest.(check bool) "no pool shape" true (Obs.Profile.pool_shape () = None);
  Alcotest.(check string) "empty report" "" (Obs.Profile.utilization_report ());
  teardown ()

(* ------------------------------------------------------------------ *)
(* GC accounting units                                                 *)
(* ------------------------------------------------------------------ *)

let test_gc_deltas () =
  (* real clock, real GC: a task that forces a minor collection while
     holding live data must report >= 1 minor collection and > 0
     promoted words, and a task that does neither reports 0 *)
  Obs.Profile.set_clock Sys.time;
  Obs.Profile.enable ();
  Obs.Profile.reset ();
  let keep = ref [||] in
  Obs.Profile.task "allocating" (fun () ->
      keep := Array.init 10_000 (fun i -> float_of_int i);
      Gc.minor ());
  Gc.minor ();
  Obs.Profile.task "quiet" (fun () -> ignore (Sys.opaque_identity !keep));
  (match Obs.Profile.tasks () with
  | [ alloc; quiet ] ->
    Alcotest.(check bool) "allocating task counts its minor collection" true
      (alloc.Obs.Profile.t_minor >= 1);
    Alcotest.(check bool) "live words promoted" true
      (alloc.Obs.Profile.t_promoted > 0.0);
    Alcotest.(check int) "quiet task induces no collection" 0
      quiet.Obs.Profile.t_minor
  | l -> Alcotest.fail (Printf.sprintf "expected 2 tasks, got %d" (List.length l)));
  teardown ()

(* ------------------------------------------------------------------ *)
(* No observer effect                                                  *)
(* ------------------------------------------------------------------ *)

let qcheck_no_observer_effect =
  QCheck.Test.make ~count:30 ~name:"profiled Par.map equals unprofiled"
    QCheck.(pair (list small_int) (int_range 1 6))
    (fun (l, jobs) ->
      let f x = (x * 7) + (x mod 3) in
      let off =
        Par.Pool.with_pool ~jobs ~oversubscribe:true (fun pool ->
            Par.map pool f l)
      in
      setup ();
      let on =
        Par.Pool.with_pool ~jobs ~oversubscribe:true (fun pool ->
            Par.map pool f l)
      in
      teardown ();
      off = List.map f l && on = off)

let test_sweep_unaffected () =
  (* the CLI contract behind --profile: the sweep CSV is byte-identical
     with the profiler on, under --jobs 4 and --cache *)
  let run () =
    Resopt.Sweep.to_csv
      (Resopt.Sweep.run ~jobs:4 ~ms:[ 1; 2 ] ~cache:true ())
  in
  let off = run () in
  setup ();
  let on = run () in
  let seq_on = Resopt.Sweep.to_csv (Resopt.Sweep.run ~ms:[ 1; 2 ] ()) in
  Alcotest.(check bool) "profiler recorded the run" true
    (Obs.Profile.tasks () <> []);
  teardown ();
  Alcotest.(check string) "profiled jobs-4 cached CSV = unprofiled" off on;
  Alcotest.(check string) "profiled parallel CSV = sequential" seq_on on;
  Par.Shared.shutdown_all ()

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "profile"
    [
      ( "recording",
        [
          Alcotest.test_case "tasks, events, worker stats" `Quick test_records;
          Alcotest.test_case "raising tasks still record" `Quick
            test_exception_still_records;
          Alcotest.test_case "disabled stays silent" `Quick
            test_disabled_is_silent;
          Alcotest.test_case "GC delta units" `Quick test_gc_deltas;
        ] );
      ( "analysis",
        [
          Alcotest.test_case "hand-computed diagnosis" `Quick test_diagnosis;
        ] );
      ( "renderers",
        [
          Alcotest.test_case "utilization report golden" `Quick
            test_utilization_report;
          Alcotest.test_case "collapsed stacks golden" `Quick test_collapsed;
          Alcotest.test_case "chrome rows merged" `Quick test_chrome_merge;
        ] );
      ( "observer effect",
        [
          QCheck_alcotest.to_alcotest qcheck_no_observer_effect;
          Alcotest.test_case "sweep CSV identical under profiling" `Quick
            test_sweep_unaffected;
        ] );
    ]
