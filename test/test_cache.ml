(* The memo-cache layer: LRU mechanics, persistence hygiene, worker
   merging, and — the property the whole subsystem rests on — that
   caching never changes a result: every memoized path must produce
   byte-identical output with the cache off, on and warm. *)

open Linalg

let prop ?(count = 100) name arb f =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~name ~count arb f)

(* run [f] with the cache on and empty, leaving it off and empty *)
let fresh f =
  Cache.clear ();
  Fun.protect
    ~finally:(fun () -> Cache.clear ())
    (fun () -> Cache.scoped ~enable:true f)

let temp_file () = Filename.temp_file "resopt_cache" ".bin"

(* ------------------------------------------------------------------ *)
(* LRU mechanics                                                       *)
(* ------------------------------------------------------------------ *)

let lru = Cache.Memo.create ~capacity:3 ~name:"test.lru" ~schema:"v1" ()

let get t key = Cache.Memo.find_or_compute t ~key (fun () -> "v:" ^ key)

let test_lru_eviction_order () =
  fresh @@ fun () ->
  List.iter (fun k -> ignore (get lru k)) [ "a"; "b"; "c" ];
  Alcotest.(check (list string)) "MRU first" [ "c"; "b"; "a" ] (Cache.Memo.keys lru);
  ignore (get lru "a");
  Alcotest.(check (list string)) "touch refreshes" [ "a"; "c"; "b" ]
    (Cache.Memo.keys lru);
  ignore (get lru "d");
  Alcotest.(check (list string)) "LRU (b) evicted" [ "d"; "a"; "c" ]
    (Cache.Memo.keys lru);
  Alcotest.(check bool) "b gone" false (Cache.Memo.mem lru "b");
  Alcotest.(check bool) "a kept" true (Cache.Memo.mem lru "a");
  let s = Cache.Memo.stats lru in
  Alcotest.(check int) "one eviction" 1 s.Cache.evictions

let test_capacity_bound () =
  fresh @@ fun () ->
  let t = Cache.Memo.create ~capacity:8 ~name:"test.bound" ~schema:"v1" () in
  for i = 0 to 99 do
    ignore (Cache.Memo.find_or_compute t ~key:(string_of_int i) (fun () -> i))
  done;
  Alcotest.(check int) "never exceeds capacity" 8 (Cache.Memo.length t);
  Alcotest.(check int) "evicted the rest" 92 (Cache.Memo.stats t).Cache.evictions;
  Alcotest.(check (list string)) "the 8 most recent survive"
    (List.init 8 (fun i -> string_of_int (99 - i)))
    (Cache.Memo.keys t)

let test_hit_miss_tallies () =
  fresh @@ fun () ->
  let t = Cache.Memo.create ~name:"test.tallies" ~schema:"v1" () in
  let runs = ref 0 in
  let look key =
    Cache.Memo.find_or_compute t ~key (fun () -> incr runs; !runs)
  in
  let first = look "k" in
  let second = look "k" in
  Alcotest.(check int) "thunk ran once" 1 !runs;
  Alcotest.(check int) "hit returns the stored value" first second;
  let s = Cache.Memo.stats t in
  Alcotest.(check (pair int int)) "1 hit, 1 miss" (1, 1) (s.Cache.hits, s.Cache.misses)

let test_disabled_is_passthrough () =
  Cache.clear ();
  Alcotest.(check bool) "cache off" false (Cache.enabled ());
  let t = Cache.Memo.create ~name:"test.disabled" ~schema:"v1" () in
  let runs = ref 0 in
  let look () = Cache.Memo.find_or_compute t ~key:"k" (fun () -> incr runs) in
  look ();
  look ();
  Alcotest.(check int) "thunk runs every time" 2 !runs;
  Alcotest.(check int) "nothing stored" 0 (Cache.Memo.length t)

let test_scoped_restores () =
  Cache.disable ();
  Cache.scoped ~enable:true (fun () ->
      Alcotest.(check bool) "on inside" true (Cache.enabled ()));
  Alcotest.(check bool) "off after" false (Cache.enabled ());
  (try
     Cache.scoped ~enable:true (fun () -> failwith "boom")
   with Failure _ -> ());
  Alcotest.(check bool) "off after exception" false (Cache.enabled ())

let test_raising_thunk_not_cached () =
  fresh @@ fun () ->
  let t = Cache.Memo.create ~name:"test.raise" ~schema:"v1" () in
  (try
     ignore (Cache.Memo.find_or_compute t ~key:"k" (fun () -> failwith "no"))
   with Failure _ -> ());
  Alcotest.(check bool) "failure not stored" false (Cache.Memo.mem t "k");
  let v = Cache.Memo.find_or_compute t ~key:"k" (fun () -> 41) in
  Alcotest.(check int) "later success stored" 41 v;
  Alcotest.(check bool) "stored now" true (Cache.Memo.mem t "k")

(* ------------------------------------------------------------------ *)
(* Worker capture / merge                                              *)
(* ------------------------------------------------------------------ *)

let test_worker_merge () =
  fresh @@ fun () ->
  let t = Cache.Memo.create ~name:"test.worker" ~schema:"v1" () in
  ignore (Cache.Memo.find_or_compute t ~key:"parent" (fun () -> 0));
  let (), snap =
    Cache.Worker.capture (fun () ->
        Alcotest.(check bool) "fresh shard inside" false
          (Cache.Memo.mem t "parent");
        ignore (Cache.Memo.find_or_compute t ~key:"w1" (fun () -> 1));
        ignore (Cache.Memo.find_or_compute t ~key:"w2" (fun () -> 2)))
  in
  Alcotest.(check bool) "parent restored" true (Cache.Memo.mem t "parent");
  Alcotest.(check bool) "not merged yet" false (Cache.Memo.mem t "w1");
  Cache.Worker.merge snap;
  Alcotest.(check bool) "w1 merged" true (Cache.Memo.mem t "w1");
  Alcotest.(check bool) "w2 merged" true (Cache.Memo.mem t "w2");
  let s = Cache.Memo.stats t in
  Alcotest.(check int) "misses summed across shards" 3 s.Cache.misses

(* ------------------------------------------------------------------ *)
(* Persistence                                                         *)
(* ------------------------------------------------------------------ *)

let persist = Cache.Memo.create ~name:"test.persist" ~schema:"v1" ()

let test_save_load_roundtrip () =
  fresh @@ fun () ->
  List.iter (fun k -> ignore (get persist k)) [ "a"; "b"; "c" ];
  let file = temp_file () in
  Fun.protect ~finally:(fun () -> Sys.remove file) @@ fun () ->
  Cache.save file;
  Cache.clear ();
  Alcotest.(check int) "cleared" 0 (Cache.Memo.length persist);
  Alcotest.(check bool) "load succeeds" true (Cache.load file);
  Alcotest.(check (list string)) "entries and recency restored" [ "c"; "b"; "a" ]
    (Cache.Memo.keys persist);
  let runs = ref 0 in
  let v = Cache.Memo.find_or_compute persist ~key:"b" (fun () -> incr runs; "x") in
  Alcotest.(check int) "loaded entry is a hit" 0 !runs;
  Alcotest.(check string) "loaded value intact" "v:b" v

let test_corrupted_file_ignored () =
  fresh @@ fun () ->
  ignore (get persist "k");
  let file = temp_file () in
  Fun.protect ~finally:(fun () -> Sys.remove file) @@ fun () ->
  Cache.save file;
  (* flip one payload byte: the checksum must catch it *)
  let ic = open_in_bin file in
  let len = in_channel_length ic in
  let bytes = really_input_string ic len |> Bytes.of_string in
  close_in ic;
  let last = Bytes.length bytes - 1 in
  Bytes.set bytes last (Char.chr (Char.code (Bytes.get bytes last) lxor 0xff));
  let oc = open_out_bin file in
  output_bytes oc bytes;
  close_out oc;
  Cache.clear ();
  Alcotest.(check bool) "corrupted file rejected" false (Cache.load file);
  Alcotest.(check int) "table untouched" 0 (Cache.Memo.length persist)

let test_bad_files_ignored () =
  fresh @@ fun () ->
  let file = temp_file () in
  Fun.protect ~finally:(fun () -> Sys.remove file) @@ fun () ->
  let write s =
    let oc = open_out_bin file in
    output_string oc s;
    close_out oc
  in
  write "this is not a cache file\n";
  Alcotest.(check bool) "foreign file rejected" false (Cache.load file);
  write "RESOPTCACHE1\n";
  Alcotest.(check bool) "truncated file rejected" false (Cache.load file);
  write "";
  Alcotest.(check bool) "empty file rejected" false (Cache.load file);
  Alcotest.(check bool) "missing file rejected" false
    (Cache.load (file ^ ".does-not-exist"))

(* the on-disk layout, reproduced by hand: a magic line, a 16-digit
   hex FNV-1a of the payload, then the marshalled section list.  The
   record below matches Cache's internal section representation
   structurally — this test pins the format. *)
type fake_section = { p_name : string; p_schema : string; p_pairs : (string * string) list }

let fnv1a s =
  let h = ref 0xbf29ce484222325 in
  String.iter
    (fun c ->
      h := !h lxor Char.code c;
      h := !h * 0x100000001b3)
    s;
  !h land max_int

let write_cache_file file sections =
  let payload = Marshal.to_string (sections : fake_section list) [] in
  let oc = open_out_bin file in
  Printf.fprintf oc "RESOPTCACHE1\n%016x\n" (fnv1a payload);
  output_string oc payload;
  close_out oc

let test_stale_sections_skipped () =
  fresh @@ fun () ->
  (* a well-formed file from an older build: one section whose schema
     tag no longer matches, one for a table that no longer exists, one
     current — only the current one may be absorbed *)
  let file = temp_file () in
  Fun.protect ~finally:(fun () -> Sys.remove file) @@ fun () ->
  write_cache_file file
    [
      {
        p_name = "test.persist";
        p_schema = "v999";
        p_pairs = [ ("stale", Marshal.to_string "poison" []) ];
      };
      {
        p_name = "test.no-such-table";
        p_schema = "v1";
        p_pairs = [ ("orphan", Marshal.to_string "poison" []) ];
      };
      {
        p_name = "test.persist";
        p_schema = "v1";
        p_pairs = [ ("fresh", Marshal.to_string "v:fresh" []) ];
      };
    ];
  Alcotest.(check bool) "well-formed file loads" true (Cache.load file);
  Alcotest.(check bool) "stale-schema section skipped" false
    (Cache.Memo.mem persist "stale");
  Alcotest.(check bool) "current section absorbed" true
    (Cache.Memo.mem persist "fresh");
  Alcotest.(check string) "absorbed value intact" "v:fresh" (get persist "fresh")

(* ------------------------------------------------------------------ *)
(* Differential properties: cached = uncached, everywhere              *)
(* ------------------------------------------------------------------ *)

let arb_mat =
  let gen =
    QCheck.Gen.(
      int_range 1 4 >>= fun r ->
      int_range 1 4 >>= fun c ->
      list_repeat (r * c) (int_range (-9) 9) >>= fun entries ->
      let a = Array.of_list entries in
      return (Mat.make r c (fun i j -> a.((i * c) + j))))
  in
  QCheck.make ~print:Mat.to_string gen

(* determinant-1 2x2 matrices as short products of the elementary
   transvections L(k), U(k) — the decomposition's own vocabulary *)
let arb_det1 =
  let gen =
    QCheck.Gen.(
      triple (int_range (-5) 5) (int_range (-5) 5) (int_range (-5) 5)
      >>= fun (k1, k2, k3) ->
      let l k = Mat.of_lists [ [ 1; 0 ]; [ k; 1 ] ] in
      let u k = Mat.of_lists [ [ 1; k ]; [ 0; 1 ] ] in
      return (Mat.mul (l k1) (Mat.mul (u k2) (l k3))))
  in
  QCheck.make ~print:Mat.to_string gen

let arb_seed = QCheck.make ~print:string_of_int QCheck.Gen.(int_range 0 50_000)

(* [uncached = cached = warm-hit] for one memoized function *)
let differential f m =
  Cache.disable ();
  let off = f m in
  fresh (fun () ->
      let cold = f m in
      let warm = f m in
      off = cold && cold = warm)

let diff_props =
  [
    prop "hermite row_style: cached = uncached" arb_mat
      (differential Hermite.row_style);
    prop "hermite col_style: cached = uncached" arb_mat
      (differential Hermite.col_style);
    prop "smith: cached = uncached" arb_mat (differential Smith.decompose);
    prop "unimodular inverse: cached = uncached" arb_det1
      (differential Unimodular.inverse);
    prop ~count:60 "hermite paper_right: cached = uncached" arb_det1
      (differential Hermite.paper_right);
    prop ~count:60 "decompose min_factors: cached = uncached" arb_det1
      (differential Decomp.Decompose.min_factors);
    prop ~count:60 "decompose euclid: cached = uncached" arb_det1
      (differential Decomp.Decompose.euclid);
  ]

let test_search_differential () =
  List.iter
    (fun bound ->
      Cache.disable ();
      let off = Decomp.Search.factor_histogram ~bound () in
      fresh (fun () ->
          let cold = Decomp.Search.factor_histogram ~bound () in
          let warm = Decomp.Search.factor_histogram ~bound () in
          Alcotest.(check bool)
            (Printf.sprintf "bound %d identical" bound)
            true
            (off = cold && cold = warm)))
    [ 1; 2; 3 ]

let plan_fingerprint (r : Resopt.Pipeline.result) =
  List.map
    (fun (e : Resopt.Commplan.entry) ->
      ( e.Resopt.Commplan.stmt,
        e.Resopt.Commplan.label,
        Resopt.Commplan.classification_name e.Resopt.Commplan.classification,
        e.Resopt.Commplan.vectorizable ))
    r.Resopt.Pipeline.plan

let pipeline_props =
  [
    prop ~count:40 "pipeline: cache on = cache off" arb_seed (fun seed ->
        let nest = Nestir.Gennest.generate ~seed:(seed + 5_000_000) in
        let run cache () = Resopt.Pipeline.run ~m:2 ~cache nest in
        Cache.disable ();
        let off = try Ok (plan_fingerprint (run false ())) with e -> Error e in
        Cache.clear ();
        let on =
          try Ok (plan_fingerprint (Resopt.Pipeline.run ~m:2 ~cache:true nest))
          with e -> Error e
        in
        Cache.clear ();
        match (off, on) with
        | Ok a, Ok b -> a = b
        | Error _, Error _ -> true
        | _ -> false);
  ]

let test_cost_differential () =
  let w = Resopt.Workloads.find "example1" in
  let r =
    Resopt.Pipeline.run ~m:2 ~schedule:w.Resopt.Workloads.schedule
      w.Resopt.Workloads.nest
  in
  let faults =
    Machine.Fault.make ~seed:7 [ Machine.Fault.Flaky { link = None; prob = 0.05 } ]
  in
  List.iter
    (fun model ->
      Cache.disable ();
      let off = Resopt.Cost.of_plan ~faults model r.Resopt.Pipeline.plan in
      fresh (fun () ->
          let cold = Resopt.Cost.of_plan ~faults model r.Resopt.Pipeline.plan in
          let warm = Resopt.Cost.of_plan ~faults model r.Resopt.Pipeline.plan in
          Alcotest.(check bool)
            (model.Machine.Models.name ^ " breakdown identical")
            true
            (off = cold && cold = warm)))
    [ Machine.Models.cm5 (); Machine.Models.paragon (); Machine.Models.t3d () ]

(* ------------------------------------------------------------------ *)
(* Parallel safety: shared cache under Par                             *)
(* ------------------------------------------------------------------ *)

let strip_rows rows =
  List.map
    (fun (r : Resopt.Sweep.row) ->
      { r with Resopt.Sweep.time_ms = 0.0; cost_ms = 0.0 })
    rows

let test_sweep_parallel_cache () =
  Cache.disable ();
  Cache.clear ();
  let uncached = strip_rows (Resopt.Sweep.run ~ms:[ 2 ] ()) in
  Cache.clear ();
  let seq = strip_rows (Resopt.Sweep.run ~ms:[ 2 ] ~cache:true ()) in
  Cache.clear ();
  let par = strip_rows (Resopt.Sweep.run ~jobs:4 ~ms:[ 2 ] ~cache:true ()) in
  Cache.clear ();
  let warm =
    Cache.scoped ~enable:true (fun () ->
        ignore (Resopt.Sweep.run ~jobs:4 ~ms:[ 2 ] ());
        strip_rows (Resopt.Sweep.run ~jobs:4 ~ms:[ 2 ] ()))
  in
  Cache.clear ();
  Alcotest.(check bool) "cached jobs:1 = uncached" true (seq = uncached);
  Alcotest.(check bool) "cached jobs:4 = uncached" true (par = uncached);
  Alcotest.(check bool) "warm jobs:4 = uncached" true (warm = uncached);
  Alcotest.(check string) "CSV byte-identical" (Resopt.Sweep.to_csv uncached)
    (Resopt.Sweep.to_csv par)

let test_counters_consistent_after_merge () =
  Obs.enable ();
  Obs.reset ();
  Cache.clear ();
  Fun.protect ~finally:(fun () ->
      Cache.clear ();
      Obs.reset ();
      Obs.disable ())
  @@ fun () ->
  ignore (Resopt.Sweep.run ~jobs:4 ~ms:[ 1; 2 ] ~cache:true ());
  let lookups = Obs.counter "cache.lookups" in
  let hits = Obs.counter "cache.hits" in
  let misses = Obs.counter "cache.misses" in
  Alcotest.(check bool) "cache was exercised" true (lookups > 0);
  Alcotest.(check int) "hits + misses = lookups after worker merge" lookups
    (hits + misses)

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "cache"
    [
      ( "lru",
        [
          Alcotest.test_case "eviction order" `Quick test_lru_eviction_order;
          Alcotest.test_case "capacity bound" `Quick test_capacity_bound;
          Alcotest.test_case "hit/miss tallies" `Quick test_hit_miss_tallies;
          Alcotest.test_case "disabled passthrough" `Quick
            test_disabled_is_passthrough;
          Alcotest.test_case "scoped restores" `Quick test_scoped_restores;
          Alcotest.test_case "raising thunk not cached" `Quick
            test_raising_thunk_not_cached;
        ] );
      ("worker", [ Alcotest.test_case "capture and merge" `Quick test_worker_merge ]);
      ( "persistence",
        [
          Alcotest.test_case "save/load roundtrip" `Quick test_save_load_roundtrip;
          Alcotest.test_case "corrupted file ignored" `Quick
            test_corrupted_file_ignored;
          Alcotest.test_case "bad files ignored" `Quick test_bad_files_ignored;
          Alcotest.test_case "stale sections skipped" `Quick
            test_stale_sections_skipped;
        ] );
      ( "differential",
        diff_props
        @ [
            Alcotest.test_case "search histograms" `Quick test_search_differential;
            Alcotest.test_case "cost breakdowns" `Quick test_cost_differential;
          ]
        @ pipeline_props );
      ( "parallel",
        [
          Alcotest.test_case "sweep: cached/parallel = uncached" `Quick
            test_sweep_parallel_cache;
          Alcotest.test_case "counters consistent after merge" `Quick
            test_counters_consistent_after_merge;
        ] );
    ]
