(* The serve tower, bottom-up: framing (property-tested — malformed
   bytes must come back as structured errors, never exceptions), the
   wire encoding, the shared backoff math, the crash-safe cache
   persistence, and finally an in-process server exercised end-to-end
   over real sockets: ok path byte-identical to the offline renderer,
   deadline -> timeout, full queue -> shed, coalesced concurrent
   clients, graceful drain, and a snapshot/restart answering warm. *)

open Serve

(* ------------------------------------------------------------------ *)
(* Frame                                                               *)
(* ------------------------------------------------------------------ *)

let prop_frame_roundtrip =
  QCheck.Test.make ~name:"decode (encode s ^ rest) = Ok (s, rest)" ~count:200
    QCheck.(pair string string)
    (fun (s, rest) ->
      match Frame.decode (Frame.encode s ^ rest) with
      | Ok (s', rest') -> s' = s && rest' = rest
      | Error _ -> false)

let prop_frame_garbage_never_raises =
  QCheck.Test.make ~name:"decode never raises on garbage" ~count:500
    QCheck.string (fun junk ->
      match Frame.decode junk with Ok _ | Error _ -> true)

let test_frame_truncated_header () =
  match Frame.decode "ab" with
  | Error (Frame.Truncated { wanted = 4; got = 2 }) -> ()
  | _ -> Alcotest.fail "expected Truncated {wanted=4; got=2}"

let test_frame_truncated_payload () =
  let framed = Frame.encode "hello world" in
  let cut = String.sub framed 0 (String.length framed - 3) in
  match Frame.decode cut with
  | Error (Frame.Truncated { wanted; got }) ->
    Alcotest.(check int) "wanted" (String.length framed) wanted;
    Alcotest.(check int) "got" (String.length cut) got
  | _ -> Alcotest.fail "expected Truncated"

let test_frame_oversized () =
  (* a length header of 0xFFFFFFFF — what random garbage usually
     claims — must be refused as Oversized, not attempted *)
  match Frame.decode "\xff\xff\xff\xffjunk" with
  | Error (Frame.Oversized { length; limit }) ->
    Alcotest.(check bool) "length > limit" true (length > limit);
    Alcotest.(check int) "limit" Frame.max_payload limit
  | _ -> Alcotest.fail "expected Oversized"

let test_frame_encode_rejects_oversized () =
  Alcotest.check_raises "encode beyond max_payload"
    (Invalid_argument
       (Printf.sprintf "Frame.encode: payload %d > max %d"
          (Frame.max_payload + 1) Frame.max_payload))
    (fun () -> ignore (Frame.encode (String.make (Frame.max_payload + 1) 'x')))

(* ------------------------------------------------------------------ *)
(* Wire                                                                *)
(* ------------------------------------------------------------------ *)

let sample_requests =
  [
    Wire.ping;
    Wire.stats;
    Wire.run "example1";
    Wire.run ~m:3 "matmul";
    Wire.run ~m:1 ~faults:"flaky:0.05" ~fseed:42 "example1";
    Wire.run ~map:"greedy" ~mseed:7 "gauss";
    Wire.run ~m:2 ~faults:"flaky:0.1;down:3-4" ~fseed:1 ~map:"search" ~mseed:3
      ~deadline_ms:250 "example5";
    Wire.run ~deadline_ms:0 "lu";
  ]

let test_wire_request_roundtrip () =
  List.iter
    (fun r ->
      match Wire.decode_request (Wire.encode_request r) with
      | Ok r' ->
        Alcotest.(check bool) "request round-trips" true (r = r')
      | Error e -> Alcotest.fail ("decode failed: " ^ e))
    sample_requests

let test_wire_solve_key_ignores_deadline () =
  let a = Wire.run ~m:2 ~deadline_ms:5 "example1" in
  let b = Wire.run ~m:2 ~deadline_ms:5000 "example1" in
  let c = Wire.run ~m:2 "example1" in
  Alcotest.(check string) "same key across deadlines" (Wire.solve_key a)
    (Wire.solve_key b);
  Alcotest.(check string) "same key without deadline" (Wire.solve_key a)
    (Wire.solve_key c);
  Alcotest.(check bool) "different m, different key" true
    (Wire.solve_key a <> Wire.solve_key (Wire.run ~m:3 "example1"))

let test_wire_request_rejects () =
  let bad s =
    match Wire.decode_request s with
    | Ok _ -> Alcotest.fail ("accepted: " ^ s)
    | Error _ -> ()
  in
  bad "";
  bad "not a request";
  bad "resopt-serve/2\nop=run\nworkload=x\n";
  bad "resopt-serve/1\nop=launch\n";
  bad "resopt-serve/1\nop=run\nm=2\n" (* run without workload *);
  bad "resopt-serve/1\nop=run\nworkload=x\nm=wat\n";
  bad "resopt-serve/1\nop=run\nworkload=x\nfrobnicate=1\n"

let test_wire_response_roundtrip () =
  List.iter
    (fun r ->
      match Wire.decode_response (Wire.encode_response r) with
      | Ok r' -> Alcotest.(check bool) "response round-trips" true (r = r')
      | Error e -> Alcotest.fail ("decode failed: " ^ e))
    [
      Wire.Answer "multi\nline\nbody\n";
      Wire.Answer "";
      Wire.Shed "queue full (64 pending)";
      Wire.Timeout "deadline 250ms expired";
      Wire.Failed "unknown workload nope";
    ];
  match Wire.decode_response "weird\nbody" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "accepted unknown status"

(* ------------------------------------------------------------------ *)
(* Backoff (shared with Fault's retransmission protocol)               *)
(* ------------------------------------------------------------------ *)

let test_backoff_matches_fault () =
  (* the client retry delays and the simulator's retransmission waits
     are the same function; pin them to each other *)
  let f = Machine.Fault.make ~ack_timeout:100 ~backoff_cap:500 [] in
  for attempt = 1 to 20 do
    Alcotest.(check int)
      (Printf.sprintf "attempt %d" attempt)
      (Machine.Fault.backoff f ~attempt)
      (Machine.Backoff.exp_delay ~base:100 ~cap:500 ~attempt)
  done

let test_backoff_jitter_bounds () =
  let b = Machine.Backoff.make ~jitter:0.5 ~seed:9 ~base:50 ~cap:1000 () in
  for attempt = 1 to 12 do
    let full = Machine.Backoff.exp_delay ~base:50 ~cap:1000 ~attempt in
    let d = Machine.Backoff.delay b ~attempt in
    Alcotest.(check bool)
      (Printf.sprintf "attempt %d in [half, full]" attempt)
      true
      (d >= full / 2 && d <= full);
    Alcotest.(check int) "deterministic" d (Machine.Backoff.delay b ~attempt)
  done

let test_backoff_no_jitter_is_exp () =
  let b = Machine.Backoff.make ~base:128 ~cap:4096 () in
  List.iter
    (fun (attempt, want) ->
      Alcotest.(check int)
        (Printf.sprintf "attempt %d" attempt)
        want
        (Machine.Backoff.delay b ~attempt))
    [ (1, 128); (2, 256); (3, 512); (6, 4096); (50, 4096) ]

let test_backoff_validation () =
  let bad f = try ignore (f ()); false with Invalid_argument _ -> true in
  Alcotest.(check bool) "base 0" true
    (bad (fun () -> Machine.Backoff.make ~base:0 ~cap:10 ()));
  Alcotest.(check bool) "cap < base" true
    (bad (fun () -> Machine.Backoff.make ~base:10 ~cap:5 ()));
  Alcotest.(check bool) "jitter > 1" true
    (bad (fun () -> Machine.Backoff.make ~jitter:1.5 ~base:1 ~cap:2 ()))

let prop_hash_unit_in_range =
  QCheck.Test.make ~name:"hash_unit in [0, 1)" ~count:500
    QCheck.(pair small_int (small_list small_int))
    (fun (seed, ks) ->
      let u = Machine.Backoff.hash_unit ~seed ks in
      u >= 0.0 && u < 1.0)

(* ------------------------------------------------------------------ *)
(* Cache: atomic save, visible corrupt loads                           *)
(* ------------------------------------------------------------------ *)

let save_table : string Cache.Memo.t =
  Cache.Memo.create ~name:"test_serve.save" ~schema:"v1" ()

let test_cache_save_atomic () =
  let file = Filename.temp_file "serve_cache" ".bin" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove file with Sys_error _ -> ())
    (fun () ->
      Cache.scoped ~enable:true (fun () ->
          ignore (Cache.Memo.find_or_compute save_table ~key:"k" (fun () -> "v"));
          Cache.save file;
          (* the temp staging file must be gone: only the complete,
             renamed-into-place file remains *)
          Alcotest.(check bool) "no .tmp left" false
            (Sys.file_exists (file ^ ".tmp"));
          Alcotest.(check bool) "file exists" true (Sys.file_exists file);
          Alcotest.(check bool) "loads back" true (Cache.load file)))

let test_cache_corrupt_load_counted () =
  let file = Filename.temp_file "serve_corrupt" ".bin" in
  Fun.protect
    ~finally:(fun () ->
      (try Sys.remove file with Sys_error _ -> ());
      Obs.reset ();
      Obs.disable ())
    (fun () ->
      Obs.enable ();
      Obs.reset ();
      let oc = open_out_bin file in
      output_string oc "RESOPTCACHE1\ndeadbeefdeadbeef\ngarbage payload";
      close_out oc;
      Alcotest.(check bool) "corrupt load returns false" false (Cache.load file);
      Alcotest.(check int) "corrupt load counted" 1
        (Obs.counter "cache.load_corrupt");
      (* a merely missing file is a normal cold start, not corruption *)
      Alcotest.(check bool) "missing load returns false" false
        (Cache.load (file ^ ".nope"));
      Alcotest.(check int) "missing load not counted" 1
        (Obs.counter "cache.load_corrupt"))

(* ------------------------------------------------------------------ *)
(* Server end-to-end                                                   *)
(* ------------------------------------------------------------------ *)

let local_server ?(jobs = 1) ?(max_queue = 64) ?(deadline_ms = 0) ?cache_file ()
    =
  let cfg =
    {
      (Server.default_config (Wire.Tcp ("127.0.0.1", 0))) with
      Server.jobs;
      max_queue;
      deadline_ms;
      snapshot_every = 1;
      cache_file;
    }
  in
  Server.start cfg

let with_server ?jobs ?max_queue ?deadline_ms ?cache_file f =
  let t = local_server ?jobs ?max_queue ?deadline_ms ?cache_file () in
  Fun.protect
    ~finally:(fun () ->
      Server.stop t;
      Server.wait t)
    (fun () -> f t)

let must_connect t =
  match Client.connect (Server.address t) with
  | Ok c -> c
  | Error e -> Alcotest.fail ("connect: " ^ e)

let must_request c req =
  match Client.request c req with
  | Ok r -> r
  | Error e -> Alcotest.fail ("request: " ^ e)

let test_server_ok_bytes () =
  (* oracle computed before the server exists: afterwards the solver
     thread owns the ambient Cache/Obs state *)
  let req = Wire.run ~m:2 ~faults:"flaky:0.05" ~fseed:42 "example1" in
  let expected =
    match Answer.of_request req with
    | Ok s -> s
    | Error e -> Alcotest.fail e
  in
  with_server @@ fun t ->
  let c = must_connect t in
  Fun.protect ~finally:(fun () -> Client.close c) @@ fun () ->
  (match must_request c req with
  | Wire.Answer body ->
    Alcotest.(check string) "served bytes = offline CLI bytes" expected body
  | r -> Alcotest.fail ("expected Answer, got " ^ Wire.status r));
  match must_request c Wire.ping with
  | Wire.Answer "pong" -> ()
  | _ -> Alcotest.fail "expected pong"

let test_server_repeat_and_stats () =
  with_server @@ fun t ->
  let c = must_connect t in
  Fun.protect ~finally:(fun () -> Client.close c) @@ fun () ->
  let req = Wire.run ~m:1 "matmul" in
  let a = must_request c req in
  let b = must_request c req in
  Alcotest.(check bool) "repeat serves identical bytes" true (a = b);
  match must_request c Wire.stats with
  | Wire.Answer body ->
    let has needle =
      Alcotest.(check bool) ("stats mention " ^ needle) true
        (let re = Str.regexp_string needle in
         try ignore (Str.search_forward re body 0); true
         with Not_found -> false)
    in
    has "requests=";
    has "ok=";
    has "cache_hits=";
    (* two solves went through, so the latency histogram has samples
       and the bounds pipeline ran for (matmul, 1) *)
    has "latency_ms_p50=";
    has "latency_ms_p95=";
    has "latency_ms_p99=";
    has "bounds_computed=";
    has "bounds_eff_last="
  | r -> Alcotest.fail ("expected stats Answer, got " ^ Wire.status r)

let test_server_deadline_timeout () =
  (* deadline 0 expires immediately — but if the scheduler runs the
     solver to completion before this thread even reaches its wait, the
     server rightly hands over the finished answer instead.  So: fresh
     solve keys (the memo can never answer instantly), every outcome
     must be a named Timeout or the correct bytes, and across attempts
     at least one must actually time out. *)
  let reqs =
    List.init 5 (fun i -> Wire.run ~m:3 ~map:"search" ~mseed:i ~deadline_ms:0 "lu")
  in
  let expected =
    List.map
      (fun r ->
        match Answer.of_request { r with Wire.deadline_ms = None } with
        | Ok s -> s
        | Error e -> Alcotest.fail e)
      reqs
  in
  with_server @@ fun t ->
  let c = must_connect t in
  Fun.protect ~finally:(fun () -> Client.close c) @@ fun () ->
  let timeouts = ref 0 in
  List.iter2
    (fun req want ->
      match must_request c req with
      | Wire.Timeout msg ->
        incr timeouts;
        Alcotest.(check string) "timeout names the deadline"
          "deadline 0ms expired" msg
      | Wire.Answer got ->
        (* the solve outran us — fine, but only with the right bytes *)
        Alcotest.(check string) "raced answer still correct" want got
      | r -> Alcotest.fail ("expected Timeout or Answer, got " ^ Wire.status r))
    reqs expected;
  Alcotest.(check bool) "at least one attempt timed out" true (!timeouts > 0)

let test_server_sheds_when_full () =
  with_server ~max_queue:0 @@ fun t ->
  let c = must_connect t in
  Fun.protect ~finally:(fun () -> Client.close c) @@ fun () ->
  match must_request c (Wire.run "example1") with
  | Wire.Shed _ -> ()
  | r -> Alcotest.fail ("expected Shed, got " ^ Wire.status r)

let test_server_malformed_frame () =
  with_server @@ fun t ->
  let port =
    match Server.address t with Wire.Tcp (_, p) -> p | _ -> assert false
  in
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Fun.protect ~finally:(fun () -> Unix.close fd) @@ fun () ->
  Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
  (* a frame header claiming 4 GiB: the server must answer with a
     structured error, not die or hang *)
  let garbage = Bytes.of_string "\xff\xff\xff\xff\x00\x00" in
  ignore (Unix.write fd garbage 0 (Bytes.length garbage));
  match Frame.read_fd fd with
  | Ok payload -> (
    match Wire.decode_response payload with
    | Ok (Wire.Failed msg) ->
      Alcotest.(check bool) "names oversize" true
        (String.length msg > 0
        && Str.string_match (Str.regexp ".*oversized.*") msg 0)
    | _ -> Alcotest.fail "expected a Failed response")
  | Error _ -> Alcotest.fail "expected a framed error response"

let test_server_unknown_workload () =
  with_server @@ fun t ->
  let c = must_connect t in
  Fun.protect ~finally:(fun () -> Client.close c) @@ fun () ->
  match must_request c (Wire.run "no_such_workload") with
  | Wire.Failed msg ->
    Alcotest.(check bool) "names the workload" true
      (Str.string_match (Str.regexp ".*no_such_workload.*") msg 0)
  | r -> Alcotest.fail ("expected Failed, got " ^ Wire.status r)

let test_server_concurrent_clients () =
  let reqs =
    [ Wire.run ~m:1 "example1"; Wire.run ~m:2 "gauss"; Wire.run ~m:1 "example1" ]
  in
  let expected =
    List.map
      (fun r ->
        match Answer.of_request r with Ok s -> s | Error e -> Alcotest.fail e)
      reqs
  in
  with_server ~jobs:2 @@ fun t ->
  let addr = Server.address t in
  let results = Array.make (List.length reqs) None in
  let ths =
    List.mapi
      (fun i req ->
        Thread.create
          (fun () -> results.(i) <- Some (Client.call ~attempts:3 addr req))
          ())
      reqs
  in
  List.iter Thread.join ths;
  List.iteri
    (fun i want ->
      match results.(i) with
      | Some (Ok (Wire.Answer got)) ->
        Alcotest.(check string)
          (Printf.sprintf "client %d bytes" i)
          want got
      | Some (Ok r) -> Alcotest.fail ("client got " ^ Wire.status r)
      | Some (Error e) -> Alcotest.fail e
      | None -> Alcotest.fail "client never finished")
    expected

let test_server_drain_refuses_new_work () =
  let t = local_server () in
  let addr = Server.address t in
  (* a request before the drain works *)
  (match Client.call ~attempts:1 addr (Wire.run ~m:1 "example2") with
  | Ok (Wire.Answer _) -> ()
  | _ -> Alcotest.fail "pre-drain request failed");
  Server.stop t;
  Server.wait t;
  (* fully drained: the socket is gone *)
  match Client.connect addr with
  | Error _ -> ()
  | Ok c ->
    (* the listener may linger closed-but-bound on some stacks; any
       admitted request must still be refused as shedding *)
    Fun.protect ~finally:(fun () -> Client.close c) @@ fun () ->
    (match Client.request c (Wire.run "example1") with
    | Ok (Wire.Shed _) | Error _ -> ()
    | Ok r -> Alcotest.fail ("expected refusal, got " ^ Wire.status r))

let test_server_snapshot_restart_warm () =
  let file = Filename.temp_file "serve_snap" ".bin" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove file with Sys_error _ -> ())
    (fun () ->
      let req = Wire.run ~m:1 "gauss" in
      let answer_of t =
        match Client.call ~attempts:3 (Server.address t) req with
        | Ok (Wire.Answer s) -> s
        | Ok r -> Alcotest.fail ("expected Answer, got " ^ Wire.status r)
        | Error e -> Alcotest.fail e
      in
      let a = with_server ~cache_file:file answer_of in
      (* simulate the restart: drop every in-memory shard, then start a
         fresh server on the snapshot file *)
      Cache.clear ();
      Alcotest.(check int) "cleared" 0 (Cache.stats ()).Cache.entries;
      let entries_after_load, b =
        with_server ~cache_file:file (fun t ->
            ((Cache.stats ()).Cache.entries, answer_of t))
      in
      Alcotest.(check bool) "snapshot repopulated the tables" true
        (entries_after_load > 0);
      Alcotest.(check string) "warm restart serves identical bytes" a b)

let () =
  Alcotest.run "serve"
    [
      ( "frame",
        [
          QCheck_alcotest.to_alcotest prop_frame_roundtrip;
          QCheck_alcotest.to_alcotest prop_frame_garbage_never_raises;
          Alcotest.test_case "truncated header" `Quick test_frame_truncated_header;
          Alcotest.test_case "truncated payload" `Quick
            test_frame_truncated_payload;
          Alcotest.test_case "oversized" `Quick test_frame_oversized;
          Alcotest.test_case "encode rejects oversized" `Quick
            test_frame_encode_rejects_oversized;
        ] );
      ( "wire",
        [
          Alcotest.test_case "request roundtrip" `Quick test_wire_request_roundtrip;
          Alcotest.test_case "solve_key ignores deadline" `Quick
            test_wire_solve_key_ignores_deadline;
          Alcotest.test_case "request rejects" `Quick test_wire_request_rejects;
          Alcotest.test_case "response roundtrip" `Quick
            test_wire_response_roundtrip;
        ] );
      ( "backoff",
        [
          Alcotest.test_case "matches Fault.backoff" `Quick
            test_backoff_matches_fault;
          Alcotest.test_case "jitter bounded + deterministic" `Quick
            test_backoff_jitter_bounds;
          Alcotest.test_case "no jitter = exp_delay" `Quick
            test_backoff_no_jitter_is_exp;
          Alcotest.test_case "validation" `Quick test_backoff_validation;
          QCheck_alcotest.to_alcotest prop_hash_unit_in_range;
        ] );
      ( "cache",
        [
          Alcotest.test_case "save is atomic" `Quick test_cache_save_atomic;
          Alcotest.test_case "corrupt load counted" `Quick
            test_cache_corrupt_load_counted;
        ] );
      ( "server",
        [
          Alcotest.test_case "ok bytes = offline bytes" `Quick test_server_ok_bytes;
          Alcotest.test_case "repeat + stats" `Quick test_server_repeat_and_stats;
          Alcotest.test_case "deadline 0 times out" `Quick
            test_server_deadline_timeout;
          Alcotest.test_case "full queue sheds" `Quick test_server_sheds_when_full;
          Alcotest.test_case "malformed frame answered" `Quick
            test_server_malformed_frame;
          Alcotest.test_case "unknown workload fails" `Quick
            test_server_unknown_workload;
          Alcotest.test_case "concurrent clients" `Quick
            test_server_concurrent_clients;
          Alcotest.test_case "drain refuses new work" `Quick
            test_server_drain_refuses_new_work;
          Alcotest.test_case "snapshot restart warm" `Quick
            test_server_snapshot_restart_warm;
        ] );
    ]
