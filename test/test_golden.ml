(* Golden snapshots of the paper's worked examples.  These pin the
   numbers the bench harness prints for Table 2 (direct vs decomposed
   cost of T = L.U on the Paragon model) and the Figure 4-5 broadcast
   rotation, so a regression anywhere in the linalg -> decomp ->
   distrib -> machine stack shows up as a changed constant, not as a
   silently different table.  Each snapshot is also re-checked with
   the memo cache on: golden values must not depend on caching. *)

open Linalg

let paper_t = Mat.of_lists [ [ 1; 2 ]; [ 3; 7 ] ]
let paper_l = Mat.of_lists [ [ 1; 0 ]; [ 3; 1 ] ]
let paper_u = Mat.of_lists [ [ 1; 2 ]; [ 0; 1 ] ]

let check_f1 name expected actual =
  Alcotest.(check string) name expected (Printf.sprintf "%.1f" actual)

(* ------------------------------------------------------------------ *)
(* Table 2: direct vs decomposed on the Paragon                        *)
(* ------------------------------------------------------------------ *)

let table2_times () =
  let par = Machine.Models.paragon () in
  let vgrid = [| 64; 32 |] in
  let layout = Distrib.Layout.all_cyclic 2 in
  let direct =
    (Distrib.Foldsim.time ~coalesce:false par ~layout ~vgrid ~flow:paper_t ())
      .Machine.Netsim.time
  in
  match
    Distrib.Foldsim.decomposed_time par ~layout ~vgrid
      ~factors:[ paper_l; paper_u ] ()
  with
  | [ u_phase; l_phase ] ->
    (direct, l_phase.Machine.Netsim.time, u_phase.Machine.Netsim.time)
  | _ -> Alcotest.fail "expected two phases for L.U"

let check_table2 () =
  let direct, tl, tu = table2_times () in
  check_f1 "not decomposed" "848.4" direct;
  check_f1 "L" "113.6" tl;
  check_f1 "U" "217.2" tu;
  check_f1 "L.U" "330.8" (tl +. tu);
  Alcotest.(check string) "direct / decomposed" "2.56"
    (Printf.sprintf "%.2f" (direct /. (tl +. tu)))

let test_table2 () =
  Cache.disable ();
  check_table2 ()

let test_table2_cached () =
  Cache.clear ();
  Fun.protect ~finally:(fun () -> Cache.clear ()) @@ fun () ->
  Cache.scoped ~enable:true (fun () ->
      check_table2 ();
      (* warm pass: served from the memo tables, same constants *)
      check_table2 ())

let test_min_factors () =
  Alcotest.(check bool) "T = L(3) . U(2)" true
    (Decomp.Decompose.min_factors paper_t = Some [ paper_l; paper_u ]);
  Alcotest.(check string) "rendered factorization" "L(3) * U(2)"
    (Format.asprintf "%a" Decomp.Decompose.pp_factors [ paper_l; paper_u ])

(* ------------------------------------------------------------------ *)
(* Figures 4-5: the broadcast rotation of Example 1, F6                *)
(* ------------------------------------------------------------------ *)

let check_fig45 () =
  let f6 = Nestir.Paper_examples.example1_f 6 in
  let ms = Mat.of_lists [ [ 1; 1; 0 ]; [ 0; 1; 0 ] ] in
  (match Macrocomm.Broadcast.detect ~theta:(Mat.zero 1 3) ~f:f6 ~ms with
  | Some info ->
    Alcotest.(check string) "before rotation"
      "partial broadcast (p = 1), directions [1; -1]"
      (Format.asprintf "%a" Macrocomm.Broadcast.pp info)
  | None -> Alcotest.fail "F6 not detected as a broadcast");
  let v =
    match Macrocomm.Axis.aligning_matrix (Mat.of_col [| 1; -1 |]) with
    | Some v -> v
    | None -> Alcotest.fail "no aligning rotation for [1; -1]"
  in
  Alcotest.(check string) "rotation matrix" "[1 0; 1 1]"
    (Format.asprintf "%a" Mat.pp_flat v);
  match Macrocomm.Broadcast.detect ~theta:(Mat.zero 1 3) ~f:f6 ~ms:(Mat.mul v ms) with
  | Some info ->
    Alcotest.(check string) "after rotation"
      "partial broadcast (p = 1, axis-aligned), directions [1; 0]"
      (Format.asprintf "%a" Macrocomm.Broadcast.pp info)
  | None -> Alcotest.fail "rotated F6 not detected as a broadcast"

let test_fig45 () =
  Cache.disable ();
  check_fig45 ()

let test_fig45_cached () =
  Cache.clear ();
  Fun.protect ~finally:(fun () -> Cache.clear ()) @@ fun () ->
  Cache.scoped ~enable:true (fun () ->
      check_fig45 ();
      check_fig45 ())

(* ------------------------------------------------------------------ *)
(* The §4.2 exhaustive scan at bound 3                                 *)
(* ------------------------------------------------------------------ *)

let test_search_bound3 () =
  Cache.disable ();
  let h = Decomp.Search.factor_histogram ~bound:3 () in
  Alcotest.(check int) "det-1 matrices" 116 h.Decomp.Search.total;
  Alcotest.(check (array int)) "factor counts" [| 1; 12; 36; 62; 5 |]
    h.Decomp.Search.by_factors;
  Alcotest.(check int) "none beyond four" 0 h.Decomp.Search.beyond_four

let () =
  Alcotest.run "golden"
    [
      ( "table2",
        [
          Alcotest.test_case "costs" `Quick test_table2;
          Alcotest.test_case "costs, cached" `Quick test_table2_cached;
          Alcotest.test_case "factorization" `Quick test_min_factors;
        ] );
      ( "fig45",
        [
          Alcotest.test_case "rotation" `Quick test_fig45;
          Alcotest.test_case "rotation, cached" `Quick test_fig45_cached;
        ] );
      ("search", [ Alcotest.test_case "bound 3 histogram" `Quick test_search_bound3 ]);
    ]
