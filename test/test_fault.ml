(* Tests for the fault-injection subsystem: spec grammar, seeded
   determinism (including under Par fan-out), rerouting around severed
   links, the retransmission protocol edges and the delivery
   invariant. *)

open Machine

let prop ?(count = 100) name arb f =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~name ~count arb f)

(* ------------------------------------------------------------------ *)
(* Spec grammar                                                        *)
(* ------------------------------------------------------------------ *)

let test_parse_roundtrip () =
  let spec = "flaky:0.05;down:3-4;down:1-2:100-200;degrade:0.5;dead:7" in
  match Fault.parse spec with
  | Error e -> Alcotest.failf "parse failed: %s" e
  | Ok specs -> (
    Alcotest.(check int) "five items" 5 (List.length specs);
    match Fault.parse (Fault.to_string specs) with
    | Error e -> Alcotest.failf "re-parse failed: %s" e
    | Ok specs' ->
      Alcotest.(check bool) "round-trips" true (specs = specs'))

let test_parse_errors () =
  List.iter
    (fun bad ->
      match Fault.parse bad with
      | Ok _ -> Alcotest.failf "%S should not parse" bad
      | Error _ -> ())
    [ "flaky"; "flaky:2.0"; "down:3"; "degrade:0"; "dead:x"; "nonsense:1"; "" ]

let test_make_validates () =
  Alcotest.check_raises "bad probability"
    (Invalid_argument "Fault.make: drop probability outside [0, 1]") (fun () ->
      ignore (Fault.make [ Fault.Flaky { link = None; prob = 1.5 } ]))

(* ------------------------------------------------------------------ *)
(* Seeded determinism                                                  *)
(* ------------------------------------------------------------------ *)

let test_rng_deterministic () =
  let draw seed = List.init 16 (fun _ -> Fault.Rng.int (Fault.Rng.make seed) 1000) in
  let a = Fault.Rng.make 42 in
  let xs = List.init 16 (fun _ -> Fault.Rng.int a 1000) in
  let b = Fault.Rng.make 42 in
  let ys = List.init 16 (fun _ -> Fault.Rng.int b 1000) in
  Alcotest.(check (list int)) "same seed, same stream" xs ys;
  Alcotest.(check bool) "different seeds differ" true (draw 1 <> draw 2)

let test_drops_order_independent () =
  (* the drop decision is a pure hash: asking in any order, any number
     of times, gives the same answers *)
  let f = Fault.make ~seed:9 [ Fault.Flaky { link = None; prob = 0.5 } ] in
  let ask p h a = Fault.drops f ~packet:p ~hop:h ~attempt:a ~link:(0, 1) in
  let forward = List.init 64 (fun i -> ask i (i mod 4) (i mod 3)) in
  let backward =
    List.rev (List.rev_map (fun i -> ask i (i mod 4) (i mod 3)) (List.init 64 Fun.id))
  in
  Alcotest.(check (list bool)) "order-independent" forward backward;
  Alcotest.(check bool) "some drop, some survive" true
    (List.mem true forward && List.mem false forward)

(* ------------------------------------------------------------------ *)
(* Rerouting                                                           *)
(* ------------------------------------------------------------------ *)

let test_route_detour () =
  let topo = Topology.mesh2d ~p:3 ~q:3 in
  let src = 0 and dst = Topology.rank_of topo [| 2; 0 |] in
  let plain = Route.path topo ~src ~dst in
  let broken = List.hd plain in
  let f =
    Fault.make
      [ Fault.Link_down { a = fst broken; b = snd broken; from_cycle = 0; until_cycle = max_int } ]
  in
  match Fault.route f topo ~src ~dst with
  | None -> Alcotest.fail "detour exists"
  | Some hops ->
    Alcotest.(check bool) "avoids the severed link" true
      (not (List.exists (fun (a, b) -> (a, b) = broken || (b, a) = broken) hops));
    (* the detour is a connected path from src to dst *)
    let rec connected cur = function
      | [] -> cur = dst
      | (a, b) :: rest -> a = cur && connected b rest
    in
    Alcotest.(check bool) "connected src->dst" true (connected src hops)

let test_route_partitioned () =
  (* a two-node machine with its only link severed: both directions
     unreachable, and the query returns (no hang, no exception) *)
  let topo = Topology.line 2 in
  let f = Fault.make [ Fault.Link_down { a = 0; b = 1; from_cycle = 0; until_cycle = max_int } ] in
  Alcotest.(check bool) "0->1 unreachable" true (Fault.route f topo ~src:0 ~dst:1 = None);
  Alcotest.(check bool) "1->0 unreachable" true (Fault.route f topo ~src:1 ~dst:0 = None);
  let net = { Netsim.alpha = 10.0; beta = 0.1; hop = 0.4 } in
  let stats = Netsim.run ~faults:f topo net [ Message.make ~src:0 ~dst:1 ~bytes:8 ] in
  Alcotest.(check int) "netsim counts it" 1 stats.Netsim.unreachable;
  let r = Eventsim.run ~faults:f topo Eventsim.default_params [ Message.make ~src:0 ~dst:1 ~bytes:8 ] in
  Alcotest.(check int) "eventsim counts it" 1 r.Eventsim.unreachable;
  Alcotest.(check int) "nothing delivered" 0 r.Eventsim.delivered

let test_dead_source () =
  let topo = Topology.line 4 in
  let f = Fault.make [ Fault.Dead_node 0 ] in
  let msgs = [ Message.make ~src:0 ~dst:3 ~bytes:8; Message.make ~src:1 ~dst:2 ~bytes:8 ] in
  let r = Eventsim.run ~faults:f topo Eventsim.default_params msgs in
  Alcotest.(check int) "dead source unreachable" 1 r.Eventsim.unreachable;
  Alcotest.(check int) "live message delivered" 1 r.Eventsim.delivered

(* ------------------------------------------------------------------ *)
(* Protocol edges                                                      *)
(* ------------------------------------------------------------------ *)

let line_msgs = [ Message.make ~src:0 ~dst:3 ~bytes:32; Message.make ~src:1 ~dst:3 ~bytes:32 ]

let test_drop_prob_zero () =
  (* prob 0.0 is indistinguishable from no faults at all *)
  let topo = Topology.line 4 in
  let clean = Eventsim.run topo Eventsim.default_params line_msgs in
  let f = Fault.make ~seed:5 [ Fault.Flaky { link = None; prob = 0.0 } ] in
  let faulty = Eventsim.run ~faults:f topo Eventsim.default_params line_msgs in
  Alcotest.(check bool) "identical results" true (clean = faulty);
  let net = { Netsim.alpha = 10.0; beta = 0.1; hop = 0.4 } in
  let s_clean = Netsim.run topo net line_msgs in
  let s_faulty = Netsim.run ~faults:f topo net line_msgs in
  Alcotest.(check bool) "netsim identical too" true (s_clean = s_faulty)

let test_drop_prob_one () =
  (* prob 1.0 drops every attempt: nothing non-local arrives, but the
     run terminates and accounts for every message *)
  let topo = Topology.line 4 in
  let f = Fault.make ~seed:5 [ Fault.Flaky { link = None; prob = 1.0 } ] in
  let r = Eventsim.run ~faults:f topo Eventsim.default_params line_msgs in
  Alcotest.(check int) "all dropped" (List.length line_msgs) r.Eventsim.dropped;
  Alcotest.(check int) "none delivered" 0 r.Eventsim.delivered;
  Alcotest.(check int) "every packet retried to the cap"
    (List.length line_msgs * Fault.max_retries f)
    r.Eventsim.retransmits;
  Alcotest.(check int) "invariant" (List.length line_msgs)
    (r.Eventsim.delivered + r.Eventsim.dropped + r.Eventsim.unreachable)

let test_backoff_cap () =
  let f = Fault.make ~ack_timeout:100 ~backoff_cap:500 [] in
  Alcotest.(check int) "attempt 1" 100 (Fault.backoff f ~attempt:1);
  Alcotest.(check int) "attempt 2" 200 (Fault.backoff f ~attempt:2);
  Alcotest.(check int) "attempt 3" 400 (Fault.backoff f ~attempt:3);
  Alcotest.(check int) "attempt 4 capped" 500 (Fault.backoff f ~attempt:4);
  Alcotest.(check int) "attempt 20 capped" 500 (Fault.backoff f ~attempt:20)

let test_degraded_loads () =
  (* a global 50% flaky probability doubles expected transmissions,
     which doubles every link load in the closed-form model *)
  let topo = Topology.line 3 in
  let msgs = [ Message.make ~src:0 ~dst:2 ~bytes:10 ] in
  let f = Fault.make [ Fault.Flaky { link = None; prob = 0.5 } ] in
  let clean = Netsim.link_loads topo msgs in
  let degraded = Netsim.link_loads ~faults:f topo msgs in
  List.iter2
    (fun (l, x) (l', y) ->
      Alcotest.(check bool) "same links" true (l = l');
      Alcotest.(check int) "double load" (2 * x) y)
    clean degraded

(* ------------------------------------------------------------------ *)
(* Wormhole bookkeeping (the queue-depth / wait-cycles split)          *)
(* ------------------------------------------------------------------ *)

let test_wormhole_queue_split () =
  let topo = Topology.line 3 in
  let wh = { Eventsim.default_params with Eventsim.mode = Eventsim.Wormhole } in
  (* both messages need link 1->2 at the same time: one waits *)
  let msgs = [ Message.make ~src:0 ~dst:2 ~bytes:64; Message.make ~src:1 ~dst:2 ~bytes:64 ] in
  let r = Eventsim.run topo wh msgs in
  Alcotest.(check bool) "contended link has queue depth" true (r.Eventsim.max_link_queue >= 1);
  Alcotest.(check bool) "loser waited cycles" true (r.Eventsim.max_inject_wait > 0);
  let sf = Eventsim.run topo Eventsim.default_params msgs in
  Alcotest.(check int) "store-forward never inject-waits" 0 sf.Eventsim.max_inject_wait;
  Alcotest.(check bool) "store-forward queue depth" true (sf.Eventsim.max_link_queue >= 1)

(* ------------------------------------------------------------------ *)
(* Whole-simulation invariants under random schedules                  *)
(* ------------------------------------------------------------------ *)

let trial topo msgs seed =
  let rng = Fault.Rng.make seed in
  let specs = Fault.random_specs rng topo in
  let faults = Fault.make ~seed specs in
  Eventsim.run ~faults topo Eventsim.default_params msgs

let chaos_setup () =
  let topo = Topology.mesh2d ~p:4 ~q:4 in
  let place v = Topology.rank_of topo [| v.(0) mod 4; v.(1) mod 4 |] in
  let flow = Linalg.Mat.of_lists [ [ 1; 2 ]; [ 3; 7 ] ] in
  let msgs = Patterns.affine_messages ~vgrid:[| 8; 8 |] ~flow ~bytes:8 ~place () in
  (topo, msgs)

let chaos_props =
  let topo, msgs = chaos_setup () in
  let total = List.length msgs in
  [
    prop ~count:40 "delivery invariant under random faults" QCheck.(int_bound 10_000)
      (fun seed ->
        let r = trial topo msgs seed in
        r.Eventsim.delivered + r.Eventsim.dropped + r.Eventsim.unreachable = total);
    prop ~count:20 "same seed, same run" QCheck.(int_bound 10_000) (fun seed ->
        trial topo msgs seed = trial topo msgs seed);
  ]

let test_jobs_deterministic () =
  (* the fault schedule must not care how trials are scheduled: a Par
     fan-out reproduces the sequential results exactly *)
  let topo, msgs = chaos_setup () in
  let seeds = List.init 8 (fun i -> 100 + i) in
  let sequential = List.map (trial topo msgs) seeds in
  let fanned =
    Par.Pool.with_pool ~jobs:4 (fun pool -> Par.map pool (trial topo msgs) seeds)
  in
  Alcotest.(check bool) "jobs 4 = jobs 1" true (sequential = fanned)

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "fault"
    [
      ( "grammar",
        [
          Alcotest.test_case "round-trip" `Quick test_parse_roundtrip;
          Alcotest.test_case "rejects garbage" `Quick test_parse_errors;
          Alcotest.test_case "make validates" `Quick test_make_validates;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "rng streams" `Quick test_rng_deterministic;
          Alcotest.test_case "drops are pure" `Quick test_drops_order_independent;
          Alcotest.test_case "par fan-out" `Quick test_jobs_deterministic;
        ] );
      ( "routing",
        [
          Alcotest.test_case "detour" `Quick test_route_detour;
          Alcotest.test_case "partitioned" `Quick test_route_partitioned;
          Alcotest.test_case "dead source" `Quick test_dead_source;
        ] );
      ( "protocol",
        [
          Alcotest.test_case "drop prob 0" `Quick test_drop_prob_zero;
          Alcotest.test_case "drop prob 1" `Quick test_drop_prob_one;
          Alcotest.test_case "backoff cap" `Quick test_backoff_cap;
          Alcotest.test_case "degraded loads" `Quick test_degraded_loads;
          Alcotest.test_case "wormhole queue split" `Quick test_wormhole_queue_split;
        ] );
      ("chaos", chaos_props);
    ]
