(* The cross-topology invariant matrix.

   One shared suite of invariants — route validity, distance bounds,
   detour-or-None correctness, delivery conservation under faults,
   telemetry no-observer-effect, mapping search <= greedy <= identity,
   same-seed and jobs-1-vs-4 determinism — instantiated against every
   topology family.  Adding a topology means adding ONE line to
   [matrix] below; no new test logic.  (Optionally also pin its
   event-simulated cycle count in [cycle_goldens] — instances without
   a pin skip that check.)

   Per-topology goldens (hand-computed fat-tree and dragonfly hop
   counts, capacities, distance tables) and the [--topo] spec-grammar
   tests follow the matrix. *)

open Machine

let prop ?(count = 200) name arb f =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~name ~count arb f)

(* ------------------------------------------------------------------ *)
(* The matrix                                                          *)
(* ------------------------------------------------------------------ *)

let matrix =
  [
    ("mesh4x8", Topology.mesh2d ~p:4 ~q:8);
    ("torus8x8", Topology.make ~torus:true [| 8; 8 |]);
    ("torus4x4x2", Topology.torus3d ~p:4 ~q:4 ~r:2);
    ("fattree2x4", Topology.fat_tree ~levels:2 ~arity:4);
    ("fattree3x2", Topology.fat_tree ~levels:3 ~arity:2);
    ("dragonfly-minimal", Topology.dragonfly ~groups:4 ~routers:4 ~hosts:2 ());
    ( "dragonfly-adaptive",
      Topology.dragonfly ~routing:(Topology.Valiant 7) ~groups:4 ~routers:4
        ~hosts:2 () );
  ]

(* Event-simulated cycle counts for the fixed [msgs_for] traffic below,
   fault-free, default parameters.  A new matrix instance without a pin
   here simply skips the golden. *)
let cycle_goldens =
  [
    ("mesh4x8", 78);
    ("torus8x8", 85);
    ("torus4x4x2", 76);
    ("fattree2x4", 136);
    ("fattree3x2", 138);
    ("dragonfly-minimal", 79);
    ("dragonfly-adaptive", 84);
  ]

(* ------------------------------------------------------------------ *)
(* Shared helpers                                                      *)
(* ------------------------------------------------------------------ *)

let norm (a, b) = (min a b, max a b)

let link_table topo =
  let tbl = Hashtbl.create 256 in
  List.iter (fun (l, cap) -> Hashtbl.replace tbl l cap) (Topology.links topo);
  tbl

let is_link tbl l = Hashtbl.mem tbl (norm l)

(* An independent reachability oracle over the surviving links — NOT
   the BFS under test. *)
let reachable ~down topo src dst =
  let n = Topology.nodes topo in
  let adj = Array.make n [] in
  List.iter
    (fun ((a, b), _) ->
      adj.(a) <- b :: adj.(a);
      adj.(b) <- a :: adj.(b))
    (Topology.links topo);
  let seen = Array.make n false in
  let rec dfs v =
    if not seen.(v) then begin
      seen.(v) <- true;
      List.iter (fun w -> if not (down (v, w)) then dfs w) adj.(v)
    end
  in
  dfs src;
  seen.(dst)

(* Fixed deterministic traffic: up to 24 remote messages. *)
let msgs_for topo =
  let n = Topology.size topo in
  List.filter_map
    (fun i ->
      let src = i mod n and dst = ((i * 5) + 3) mod n in
      if src = dst then None else Some (Message.make ~src ~dst ~bytes:48))
    (List.init (min (2 * n) 24) Fun.id)

let arb_pair name topo =
  let n = Topology.size topo in
  QCheck.make
    ~print:(fun (s, d) -> Printf.sprintf "%s %d->%d" name s d)
    QCheck.Gen.(pair (int_range 0 (n - 1)) (int_range 0 (n - 1)))

(* ------------------------------------------------------------------ *)
(* The shared invariants                                               *)
(* ------------------------------------------------------------------ *)

let test_graph_well_formed topo () =
  let links = Topology.links topo in
  Alcotest.(check bool) "links sorted, u < v, cap >= 1" true
    (List.for_all (fun ((u, v), cap) -> u < v && cap >= 1) links
    && List.sort compare links = links);
  Alcotest.(check bool) "hosts <= nodes" true
    (Topology.size topo <= Topology.nodes topo);
  Alcotest.(check bool) "endpoints within nodes" true
    (List.for_all
       (fun ((u, v), _) -> u >= 0 && v < Topology.nodes topo)
       links);
  (* every vertex is reachable from host 0 *)
  let ok = ref true in
  for v = 0 to Topology.nodes topo - 1 do
    if not (reachable ~down:(fun _ -> false) topo 0 v) then ok := false
  done;
  Alcotest.(check bool) "connected" true !ok;
  Alcotest.(check int) "host-grid view is the host count"
    (Topology.size topo)
    (Array.fold_left ( * ) 1 (Topology.dims topo))

let prop_route_valid (name, topo) =
  let tbl = link_table topo in
  prop (name ^ ": route is a real path ending at dst") (arb_pair name topo)
    (fun (src, dst) ->
      let r = Topology.route topo ~src ~dst in
      if src = dst then r = []
      else
        List.length r <= Topology.route_bound topo
        && (match r with (a, _) :: _ -> a = src | [] -> false)
        && (match List.rev r with (_, b) :: _ -> b = dst | [] -> false)
        && List.for_all (fun l -> is_link tbl l) r
        && fst (List.fold_left
                  (fun (ok, prev) (a, b) -> (ok && a = prev, b))
                  (true, src) r))

let prop_distance (name, topo) =
  prop (name ^ ": distance symmetric, within bounds, <= route length")
    (arb_pair name topo) (fun (src, dst) ->
      let d = Topology.distance topo ~src ~dst in
      d = Topology.distance topo ~src:dst ~dst:src
      && d <= Topology.diameter topo
      && (if src = dst then d = 0 else d > 0)
      && d <= List.length (Topology.route topo ~src ~dst))

let prop_detour (name, topo) =
  (* sever the k-th link of the minimal route (both directions) plus a
     pseudo-random extra link, then demand: detour avoiding them and
     reaching dst, or None exactly when the oracle agrees dst is cut
     off *)
  let links = Array.of_list (List.map fst (Topology.links topo)) in
  prop (name ^ ": detour avoids severed links or None iff unreachable")
    (arb_pair name topo) (fun (src, dst) ->
      let base = Topology.route topo ~src ~dst in
      let severed =
        match base with
        | [] -> []
        | _ ->
          let k = (src + dst) mod List.length base in
          [ norm (List.nth base k);
            norm links.((src * 31 + dst * 7) mod Array.length links) ]
      in
      let down l = List.mem (norm l) severed in
      match Topology.route_avoiding ~down topo ~src ~dst with
      | None -> not (reachable ~down topo src dst)
      | Some r ->
        reachable ~down topo src dst
        && (if src = dst then r = []
            else
              (match List.rev r with (_, b) :: _ -> b = dst | [] -> false)
              && List.for_all (fun l -> not (down l)) r
              && fst (List.fold_left
                        (fun (ok, prev) (a, b) -> (ok && a = prev, b))
                        (true, src) r)))

let fault_variants topo =
  let n = Topology.size topo in
  let first_link =
    match Topology.route topo ~src:0 ~dst:(n - 1) with
    | (a, b) :: _ -> (a, b)
    | [] -> (0, 0)
  in
  [
    Fault.none;
    Fault.make ~seed:3 [ Fault.Flaky { link = None; prob = 0.3 } ];
    Fault.make ~seed:4
      [
        Fault.Link_down
          { a = fst first_link; b = snd first_link; from_cycle = 0;
            until_cycle = max_int };
        Fault.Dead_node (n - 1);
        Fault.Flaky { link = None; prob = 0.05 };
      ];
  ]

let test_conservation topo () =
  let msgs = msgs_for topo in
  let total = List.length msgs in
  List.iter
    (fun faults ->
      let r = Eventsim.run ~faults topo Eventsim.default_params msgs in
      Alcotest.(check int)
        ("delivered + dropped + unreachable = total under "
        ^ Fault.label faults)
        total
        (r.Eventsim.delivered + r.Eventsim.dropped + r.Eventsim.unreachable);
      if Fault.is_none faults then
        Alcotest.(check int) "fault-free delivers everything" total
          r.Eventsim.delivered)
    (fault_variants topo)

let test_no_observer topo () =
  let msgs = msgs_for topo in
  let faults = Fault.make ~seed:5 [ Fault.Flaky { link = None; prob = 0.1 } ] in
  let quiet = Eventsim.run ~faults topo Eventsim.default_params msgs in
  let watched =
    Obs.Telemetry.enable ();
    Fun.protect
      ~finally:(fun () ->
        Obs.Telemetry.disable ();
        Obs.Telemetry.reset ())
      (fun () -> Eventsim.run ~faults topo Eventsim.default_params msgs)
  in
  Alcotest.(check bool) "telemetry does not change the simulation" true
    (quiet = watched);
  let nquiet = Netsim.run topo { Netsim.alpha = 10.0; beta = 0.1; hop = 0.4 } msgs in
  let nwatched =
    Obs.Telemetry.enable ();
    Fun.protect
      ~finally:(fun () ->
        Obs.Telemetry.disable ();
        Obs.Telemetry.reset ())
      (fun () ->
        Netsim.run topo { Netsim.alpha = 10.0; beta = 0.1; hop = 0.4 } msgs)
  in
  Alcotest.(check bool) "telemetry does not change the pricing" true
    (nquiet = nwatched)

let test_mapping_order topo () =
  let n = Topology.size topo in
  let vol =
    List.filter
      (fun ((a, b), _) -> a <> b)
      (List.init (min n 16) (fun i -> ((i, ((i * 3) + 1) mod n), 64 * (i + 1))))
  in
  let hb = Mapping.hop_bytes topo vol in
  let id = Mapping.identity n in
  let g = Mapping.greedy topo vol in
  let s = Mapping.compute (Mapping.spec ~seed:1 Mapping.Search) topo vol in
  Alcotest.(check bool) "permutations valid" true
    (Mapping.is_valid g && Mapping.is_valid s);
  Alcotest.(check bool)
    (Printf.sprintf "search (%d) <= greedy (%d) <= identity (%d)" (hb s) (hb g)
       (hb id))
    true
    (hb s <= hb g && hb g <= hb id)

let test_determinism name topo () =
  let msgs = msgs_for topo in
  let faults =
    Fault.make ~seed:11 [ Fault.Flaky { link = None; prob = 0.15 } ]
  in
  let r1 = Eventsim.run ~faults topo Eventsim.default_params msgs in
  let r2 = Eventsim.run ~faults topo Eventsim.default_params msgs in
  Alcotest.(check bool) "same seed, same result" true (r1 = r2);
  match List.assoc_opt name cycle_goldens with
  | None -> ()
  | Some golden ->
    let r = Eventsim.run topo Eventsim.default_params msgs in
    Alcotest.(check int) "pinned cycle count" golden r.Eventsim.cycles

let test_sweep_jobs topo () =
  let models = [ Models.of_topo topo ] in
  let workloads =
    [ Resopt.Workloads.find "example1"; Resopt.Workloads.find "example4" ]
  in
  let csv jobs = Resopt.Sweep.to_csv (Resopt.Sweep.run ~jobs ~models ~workloads ()) in
  Alcotest.(check string) "jobs 1 and jobs 4 byte-identical" (csv 1) (csv 4)

let shared_suite (name, topo) =
  ( "matrix:" ^ name,
    [
      Alcotest.test_case "graph well-formed" `Quick (test_graph_well_formed topo);
      prop_route_valid (name, topo);
      prop_distance (name, topo);
      prop_detour (name, topo);
      Alcotest.test_case "delivery conservation" `Quick (test_conservation topo);
      Alcotest.test_case "no observer effect" `Quick (test_no_observer topo);
      Alcotest.test_case "mapping order" `Quick (test_mapping_order topo);
      Alcotest.test_case "determinism + cycle golden" `Quick
        (test_determinism name topo);
      Alcotest.test_case "sweep jobs determinism" `Quick (test_sweep_jobs topo);
    ] )

(* ------------------------------------------------------------------ *)
(* Per-topology goldens: hand-computed routes and capacities           *)
(* ------------------------------------------------------------------ *)

let hops = Alcotest.(list (pair int int))

(* fattree:2:2 — 4 hosts (0-3), leaf switches 4 (hosts 0,1) and 5
   (hosts 2,3), root 6. *)
let test_fattree_routes () =
  let t = Topology.fat_tree ~levels:2 ~arity:2 in
  Alcotest.(check int) "hosts" 4 (Topology.size t);
  Alcotest.(check int) "nodes" 7 (Topology.nodes t);
  Alcotest.(check int) "diameter" 4 (Topology.diameter t);
  Alcotest.check hops "siblings meet at the leaf" [ (0, 4); (4, 1) ]
    (Topology.route t ~src:0 ~dst:1);
  Alcotest.check hops "far pair climbs to the root"
    [ (0, 4); (4, 6); (6, 5); (5, 3) ]
    (Topology.route t ~src:0 ~dst:3);
  Alcotest.check hops "and back down the other side"
    [ (3, 5); (5, 6); (6, 4); (4, 0) ]
    (Topology.route t ~src:3 ~dst:0);
  (* capacity doubles per level: host links 1, leaf->root 2 *)
  Alcotest.(check int) "host link capacity" 1 (Topology.link_capacity t (0, 4));
  Alcotest.(check int) "uplink capacity" 2 (Topology.link_capacity t (4, 6));
  (* the satellite regression: the fat-tree distance table the mapping
     search now consumes (2 inside a leaf, 4 across the root) *)
  let expect =
    [|
      [| 0; 2; 4; 4 |]; [| 2; 0; 4; 4 |]; [| 4; 4; 0; 2 |]; [| 4; 4; 2; 0 |];
    |]
  in
  let n = Topology.size t in
  Alcotest.(check bool) "distance table" true
    (Array.init n (fun s ->
         Array.init n (fun d -> Topology.distance t ~src:s ~dst:d))
    = expect)

(* fattree:3:4 — 64 hosts, 16 + 4 + 1 switches. *)
let test_fattree_large () =
  let t = Topology.fat_tree ~levels:3 ~arity:4 in
  Alcotest.(check int) "hosts" 64 (Topology.size t);
  Alcotest.(check int) "nodes" 85 (Topology.nodes t);
  Alcotest.(check (array int)) "near-square host view" [| 8; 8 |]
    (Topology.dims t);
  Alcotest.(check int) "distance within a leaf" 2 (Topology.distance t ~src:0 ~dst:3);
  Alcotest.(check int) "distance across one level" 4
    (Topology.distance t ~src:0 ~dst:15);
  Alcotest.(check int) "distance across the root" 6
    (Topology.distance t ~src:0 ~dst:63);
  Alcotest.(check int) "top uplink capacity" 16
    (Topology.link_capacity t (64 + 16, 64 + 16 + 4));
  Alcotest.(check bool) "hw collectives hinted" true
    (Topology.capability t).Topology.hw_collectives

(* dragonfly:3:2:1 — 6 hosts, routers 6..11 (group g owns 6+2g and
   7+2g); gateway of group p toward q sits on router (q-1 mod 2 | q mod
   2). *)
let test_dragonfly_routes () =
  let t = Topology.dragonfly ~groups:3 ~routers:2 ~hosts:1 () in
  Alcotest.(check int) "hosts" 6 (Topology.size t);
  Alcotest.(check int) "nodes" 12 (Topology.nodes t);
  Alcotest.(check int) "diameter" 5 (Topology.diameter t);
  Alcotest.check hops "same group: host, local link, host"
    [ (0, 6); (6, 7); (7, 1) ]
    (Topology.route t ~src:0 ~dst:1);
  Alcotest.check hops "cross group, both gateways remote"
    [ (0, 6); (6, 7); (7, 10); (10, 11); (11, 5) ]
    (Topology.route t ~src:0 ~dst:5);
  Alcotest.(check int) "minimal distance" 5 (Topology.distance t ~src:0 ~dst:5);
  Alcotest.(check int) "global link capacity = hosts per router" 1
    (Topology.link_capacity t (7, 10));
  let t2 = Topology.dragonfly ~groups:4 ~routers:4 ~hosts:2 () in
  Alcotest.(check int) "fat global links" 2
    (Topology.link_capacity t2
       (List.hd
          (List.filter_map
             (fun ((a, b), cap) ->
               if cap > 1 then Some (a, b) else None)
             (Topology.links t2))))

let test_dragonfly_adaptive () =
  let minimal = Topology.dragonfly ~groups:4 ~routers:4 ~hosts:2 () in
  let adaptive =
    Topology.dragonfly ~routing:(Topology.Valiant 7) ~groups:4 ~routers:4
      ~hosts:2 ()
  in
  let n = Topology.size adaptive in
  Alcotest.(check bool) "adaptive routing hinted" true
    (Topology.capability adaptive).Topology.adaptive_routing;
  Alcotest.(check int) "route bound two above diameter"
    (Topology.diameter adaptive + 2)
    (Topology.route_bound adaptive);
  (* Valiant detours are real (some route exceeds the minimal length)
     yet pure: the same (seed, src, dst) always takes the same path,
     and distances stay the minimal metric. *)
  let detoured = ref false in
  for src = 0 to n - 1 do
    for dst = 0 to n - 1 do
      let r = Topology.route adaptive ~src ~dst in
      let d = Topology.distance adaptive ~src ~dst in
      if List.length r > d then detoured := true;
      Alcotest.(check int) "minimal metric unchanged" d
        (Topology.distance minimal ~src ~dst);
      Alcotest.(check bool) "replay identical" true
        (r = Topology.route adaptive ~src ~dst)
    done
  done;
  Alcotest.(check bool) "some pair detours" true !detoured

let golden_suite =
  ( "golden",
    [
      Alcotest.test_case "fattree 2:2 routes + distance table" `Quick
        test_fattree_routes;
      Alcotest.test_case "fattree 3:4 shape" `Quick test_fattree_large;
      Alcotest.test_case "dragonfly 3:2:1 routes" `Quick test_dragonfly_routes;
      Alcotest.test_case "dragonfly adaptive" `Quick test_dragonfly_adaptive;
    ] )

(* ------------------------------------------------------------------ *)
(* Spec grammar                                                        *)
(* ------------------------------------------------------------------ *)

let arb_topo =
  let open QCheck.Gen in
  let grid =
    int_range 1 3 >>= fun nd ->
    list_repeat nd (int_range 1 9) >>= fun dims ->
    map
      (fun torus -> Topology.make ~torus (Array.of_list dims))
      (oneofl [ true; false ])
  in
  let fattree =
    int_range 1 3 >>= fun levels ->
    map (fun arity -> Topology.fat_tree ~levels ~arity) (int_range 2 4)
  in
  let dragonfly =
    int_range 1 4 >>= fun groups ->
    int_range 1 4 >>= fun routers ->
    int_range 1 3 >>= fun hosts ->
    map
      (fun routing -> Topology.dragonfly ~routing ~groups ~routers ~hosts ())
      (oneofl [ Topology.Minimal; Topology.Valiant 0; Topology.Valiant 42 ])
  in
  QCheck.make ~print:Topology.to_string (oneof [ grid; fattree; dragonfly ])

let test_parse_pins () =
  let ok spec f =
    match Topology.of_string spec with
    | Ok t -> f t
    | Error e -> Alcotest.failf "%S should parse: %s" spec e
  in
  ok "mesh:4x8" (fun t ->
      Alcotest.(check bool) "grid" true (Topology.is_grid t);
      Alcotest.(check bool) "mesh" false (Topology.is_torus t);
      Alcotest.(check (array int)) "dims" [| 4; 8 |] (Topology.dims t));
  ok "torus:8x8" (fun t ->
      Alcotest.(check bool) "torus" true (Topology.is_torus t);
      Alcotest.(check string) "print" "torus:8x8" (Topology.to_string t));
  ok "Torus:8X8" (fun t ->
      Alcotest.(check string) "case-insensitive" "torus:8x8"
        (Topology.to_string t));
  ok "fattree:3:4" (fun t ->
      Alcotest.(check int) "64 hosts" 64 (Topology.size t));
  ok "dragonfly:4:4:2" (fun t ->
      Alcotest.(check int) "32 hosts" 32 (Topology.size t);
      Alcotest.(check bool) "minimal" false
        (Topology.capability t).Topology.adaptive_routing);
  ok "dragonfly:4:4:2:adaptive:9" (fun t ->
      Alcotest.(check string) "seed survives" "dragonfly:4:4:2:adaptive:9"
        (Topology.to_string t))

let test_parse_errors () =
  List.iter
    (fun bad ->
      match Topology.of_string bad with
      | Ok _ -> Alcotest.failf "%S should not parse" bad
      | Error e ->
        let quoted = Printf.sprintf "%S" bad in
        let contains hay needle =
          let nh = String.length hay and nn = String.length needle in
          let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
          go 0
        in
        Alcotest.(check bool)
          (Printf.sprintf "error for %S names the spec" bad)
          true (contains e quoted))
    [
      "";
      "mesh";
      "mesh:";
      "mesh:0x4";
      "mesh:4x-2";
      "torus:axb";
      "fattree:3";
      "fattree:0:4";
      "fattree:2:1";
      "fattree:2:4:9";
      "dragonfly:4:4";
      "dragonfly:4:0:2";
      "dragonfly:2:2:2:bogus";
      "dragonfly:2:2:2:adaptive:-1";
      "ring:8";
      "hypercube:4";
    ]

let grammar_suite =
  ( "grammar",
    [
      prop ~count:300 "to_string/of_string round-trip" arb_topo (fun t ->
          match Topology.of_string (Topology.to_string t) with
          | Ok t' -> Topology.to_string t' = Topology.to_string t && t' = t
          | Error _ -> false);
      Alcotest.test_case "parse pins" `Quick test_parse_pins;
      Alcotest.test_case "rejects garbage, naming the spec" `Quick
        test_parse_errors;
    ] )

let () =
  Alcotest.run "topology"
    (List.map shared_suite matrix @ [ golden_suite; grammar_suite ])
