(* End-to-end fuzzing: random nests through the whole optimizer,
   checked against the brute-force oracle and the distributed
   execution. *)

let prop ?(count = 150) name arb f =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~name ~count arb f)

let arb_seed =
  QCheck.make ~print:string_of_int QCheck.Gen.(int_range 0 100_000)

let fuzz_props =
  [
    prop "pipeline output always passes the brute-force oracle" arb_seed
      (fun seed ->
        let nest = Nestir.Gennest.generate ~seed in
        match Resopt.Pipeline.run ~m:2 nest with
        | exception Failure _ -> true (* no full-rank materialization *)
        | r ->
          Alignment.Alloc.verify r.Resopt.Pipeline.alloc
          && Resopt.Validate.is_valid r);
    prop ~count:60 "distributed execution preserves semantics" arb_seed
      (fun seed ->
        let nest = Nestir.Gennest.generate ~seed:(seed + 1_000_000) in
        match Resopt.Pipeline.run ~m:2 nest with
        | exception Failure _ -> true
        | r ->
          let s = Resopt.Distexec.run r in
          s.Resopt.Distexec.semantics_preserved
          && s.Resopt.Distexec.local_accesses_silent);
    prop ~count:80 "m = 1 and m = 3 also hold" arb_seed (fun seed ->
        let nest = Nestir.Gennest.generate ~seed:(seed + 2_000_000) in
        List.for_all
          (fun m ->
            match Resopt.Pipeline.run ~m nest with
            | exception Failure _ -> true
            | r -> Resopt.Validate.is_valid r)
          [ 1; 3 ]);
    prop ~count:200 "generated nests round-trip through the DSL" arb_seed
      (fun seed ->
        let nest = Nestir.Gennest.generate ~seed:(seed + 4_000_000) in
        let txt = Nestir.Dsl.print nest in
        match Nestir.Dsl.parse txt with
        | Error _ -> false
        | Ok nest2 -> Nestir.Dsl.print nest2 = txt);
    prop ~count:100 "plans are complete" arb_seed (fun seed ->
        let nest = Nestir.Gennest.generate ~seed:(seed + 3_000_000) in
        match Resopt.Pipeline.run ~m:2 nest with
        | exception Failure _ -> true
        | r ->
          List.length r.Resopt.Pipeline.plan
          = List.length (Nestir.Loopnest.all_accesses nest));
  ]

(* Generator fan-out: the same random nests, produced and optimized
   across domains through Par, must agree with the sequential run in
   every observable — parallelism may change wall-clock only. *)
let par_props =
  let nest_seeds seed k = List.init k (fun i -> seed + (i * 7919)) in
  [
    prop ~count:15 "parallel nest generation matches sequential" arb_seed
      (fun seed ->
        let seeds = nest_seeds seed 24 in
        let print s = Nestir.Dsl.print (Nestir.Gennest.generate ~seed:s) in
        let sequential = List.map print seeds in
        Par.Pool.with_pool ~jobs:4 (fun pool ->
            Par.map pool print seeds = sequential));
    prop ~count:8 "parallel pipeline verdicts match sequential" arb_seed
      (fun seed ->
        let seeds = nest_seeds (seed + 5_000_000) 12 in
        let verdict s =
          let nest = Nestir.Gennest.generate ~seed:s in
          match Resopt.Pipeline.run ~m:2 nest with
          | exception Failure _ -> None
          | r ->
            Some
              ( Resopt.Pipeline.non_local r,
                Resopt.Validate.is_valid r,
                List.length r.Resopt.Pipeline.plan )
        in
        let sequential = List.map verdict seeds in
        Par.Pool.with_pool ~jobs:4 (fun pool ->
            Par.map pool verdict seeds = sequential));
  ]

let () =
  Alcotest.run "fuzz" [ ("pipeline", fuzz_props); ("parallel", par_props) ]
