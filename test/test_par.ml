(* The parallel runtime: combinator results equal their sequential
   counterparts (whatever the jobs count), determinism of input order,
   exception propagation, pool lifecycle, and the Obs merge
   contract. *)

(* oversubscribe so these tests exercise real multi-domain scheduling
   even on single-core CI machines (the default caps width at the core
   count) *)
let with_pool jobs f = Par.Pool.with_pool ~jobs ~oversubscribe:true f

(* ------------------------------------------------------------------ *)
(* Combinators vs. their sequential counterparts                       *)
(* ------------------------------------------------------------------ *)

let inputs = [ []; [ 42 ]; [ 1; 2 ]; List.init 100 (fun i -> i - 50) ]

let test_map_equals_sequential () =
  List.iter
    (fun jobs ->
      with_pool jobs @@ fun pool ->
      List.iter
        (fun l ->
          Alcotest.(check (list int))
            (Printf.sprintf "map jobs:%d n:%d" jobs (List.length l))
            (List.map (fun x -> (x * x) + 1) l)
            (Par.map pool (fun x -> (x * x) + 1) l))
        inputs)
    [ 1; 2; 8 ]

let test_filter_map_equals_sequential () =
  let f x = if x mod 3 = 0 then Some (x / 3) else None in
  List.iter
    (fun l ->
      with_pool 4 @@ fun pool ->
      Alcotest.(check (list int))
        "filter_map" (List.filter_map f l) (Par.filter_map pool f l))
    inputs

let test_concat_map_equals_sequential () =
  let f x = List.init (abs x mod 3) (fun i -> (x * 10) + i) in
  List.iter
    (fun l ->
      with_pool 4 @@ fun pool ->
      Alcotest.(check (list int))
        "concat_map" (List.concat_map f l) (Par.concat_map pool f l))
    inputs

let test_reduce_equals_fold () =
  (* (+) and a non-commutative but associative operation *)
  List.iter
    (fun l ->
      with_pool 4 @@ fun pool ->
      Alcotest.(check int) "reduce (+)" (List.fold_left ( + ) 0 l)
        (Par.reduce pool ( + ) 0 l))
    inputs;
  let concat = List.map string_of_int (List.init 57 Fun.id) in
  with_pool 4 @@ fun pool ->
  Alcotest.(check string)
    "reduce (^) keeps chunk order"
    (List.fold_left ( ^ ) "" concat)
    (Par.reduce pool ( ^ ) "" concat)

let test_array_combinators () =
  with_pool 4 @@ fun pool ->
  let a = Array.init 41 (fun i -> i - 20) in
  Alcotest.(check (array int))
    "Arr.map" (Array.map succ a) (Par.Arr.map pool succ a);
  Alcotest.(check (array int))
    "Arr.init" (Array.init 23 (fun i -> i * i))
    (Par.Arr.init pool 23 (fun i -> i * i));
  let f x = if x land 1 = 0 then Some (-x) else None in
  let seq_fm =
    Array.of_list (List.filter_map f (Array.to_list a))
  in
  Alcotest.(check (array int)) "Arr.filter_map" seq_fm (Par.Arr.filter_map pool f a);
  let g x = Array.make (abs x mod 3) x in
  let seq_cm = Array.concat (Array.to_list (Array.map g a)) in
  Alcotest.(check (array int)) "Arr.concat_map" seq_cm (Par.Arr.concat_map pool g a);
  Alcotest.(check (array int)) "Arr.map empty" [||] (Par.Arr.map pool succ [||])

(* ------------------------------------------------------------------ *)
(* Input-order determinism under deliberate imbalance                  *)
(* ------------------------------------------------------------------ *)

let test_order_determinism () =
  (* early items take much longer than late ones, so with 8 domains the
     completion order is scrambled; the result order must not be *)
  let n = 64 in
  let work i =
    let spin = (n - i) * 2000 in
    let acc = ref 0 in
    for k = 1 to spin do
      acc := (!acc + k) mod 9973
    done;
    (i, !acc land 0)
  in
  let expected = List.init n (fun i -> (i, 0)) in
  with_pool 8 @@ fun pool ->
  for _ = 1 to 3 do
    Alcotest.(check (list (pair int int)))
      "order" expected
      (Par.map pool work (List.init n Fun.id))
  done

(* ------------------------------------------------------------------ *)
(* Exceptions                                                          *)
(* ------------------------------------------------------------------ *)

exception Boom of int

let test_exception_propagation () =
  with_pool 4 @@ fun pool ->
  (match
     Par.map pool
       (fun i -> if i = 50 then raise (Boom i) else i)
       (List.init 100 Fun.id)
   with
  | _ -> Alcotest.fail "expected Boom"
  | exception Boom 50 -> ());
  (* two failing tasks: the lowest input index wins, whatever the
     scheduling *)
  match
    Par.map pool
      (fun i -> if i = 30 || i = 60 then raise (Boom i) else i)
      (List.init 100 Fun.id)
  with
  | _ -> Alcotest.fail "expected Boom"
  | exception Boom i -> Alcotest.(check int) "lowest failing index" 30 i

let test_pool_survives_exception () =
  with_pool 4 @@ fun pool ->
  (try ignore (Par.map pool (fun _ -> failwith "boom") [ 1; 2; 3 ])
   with Failure _ -> ());
  Alcotest.(check (list int))
    "pool still works" [ 2; 4; 6 ]
    (Par.map pool (fun x -> 2 * x) [ 1; 2; 3 ])

(* ------------------------------------------------------------------ *)
(* Pool lifecycle                                                      *)
(* ------------------------------------------------------------------ *)

let test_pool_reuse () =
  let pool = Par.Pool.create ~jobs:4 () in
  Alcotest.(check int) "jobs" 4 (Par.Pool.jobs pool);
  for round = 1 to 5 do
    Alcotest.(check (list int))
      (Printf.sprintf "round %d" round)
      (List.init 30 (fun i -> i * round))
      (Par.map pool (fun i -> i * round) (List.init 30 Fun.id))
  done;
  Par.Pool.shutdown pool;
  Par.Pool.shutdown pool (* idempotent *);
  match Par.map pool Fun.id [ 1 ] with
  | _ -> Alcotest.fail "expected Invalid_argument after shutdown"
  | exception Invalid_argument _ -> ()

let test_oversubscription () =
  (* many more domains than items (and than cores) *)
  with_pool 8 @@ fun pool ->
  Alcotest.(check (list int)) "8 jobs, 3 items" [ 1; 4; 9 ]
    (Par.map pool (fun x -> x * x) [ 1; 2; 3 ]);
  Alcotest.(check (list int)) "8 jobs, 1 item" [ 7 ] (Par.map pool Fun.id [ 7 ]);
  Alcotest.(check (list int)) "8 jobs, 0 items" [] (Par.map pool Fun.id [])

let test_jobs_clamped () =
  with_pool 0 @@ fun pool ->
  Alcotest.(check int) "jobs >= 1" 1 (Par.Pool.jobs pool);
  Alcotest.(check (list int)) "sequential pool works" [ 1; 2 ]
    (Par.map pool Fun.id [ 1; 2 ])

let test_width_capped () =
  let cores = max 1 (Domain.recommended_domain_count ()) in
  Par.Pool.with_pool ~jobs:(cores + 7) @@ fun pool ->
  Alcotest.(check int) "jobs stays as requested" (cores + 7)
    (Par.Pool.jobs pool);
  Alcotest.(check int) "width capped at cores" cores (Par.Pool.width pool);
  Alcotest.(check (list int))
    "capped pool still computes" [ 1; 4; 9 ]
    (Par.map pool (fun x -> x * x) [ 1; 2; 3 ]);
  (* the cap never widens, and oversubscribe lifts it *)
  (Par.Pool.with_pool ~jobs:1 @@ fun p ->
   Alcotest.(check int) "1-job pool has width 1" 1 (Par.Pool.width p));
  Par.Pool.with_pool ~jobs:(cores + 3) ~oversubscribe:true @@ fun p ->
  Alcotest.(check int) "oversubscribed width = jobs" (cores + 3)
    (Par.Pool.width p)

let test_shared_pools () =
  let a = Par.Shared.get ~jobs:3 in
  let b = Par.Shared.get ~jobs:3 in
  Alcotest.(check bool) "same pool returned" true (a == b);
  let c = Par.Shared.get ~jobs:2 in
  Alcotest.(check bool) "distinct jobs, distinct pool" false (a == c);
  Alcotest.(check (list int))
    "shared pool computes" [ 0; 2; 4 ]
    (Par.map a (fun x -> 2 * x) [ 0; 1; 2 ]);
  Par.Shared.shutdown_all ();
  (* a fresh pool is created after shutdown_all *)
  let d = Par.Shared.get ~jobs:3 in
  Alcotest.(check bool) "fresh pool after shutdown_all" false (a == d);
  Alcotest.(check (list int))
    "fresh shared pool computes" [ 1; 2; 3 ]
    (Par.map d succ [ 0; 1; 2 ]);
  Par.Shared.shutdown_all ()

(* ------------------------------------------------------------------ *)
(* Obs isolation and merge                                             *)
(* ------------------------------------------------------------------ *)

let obs_setup () =
  Obs.set_clock (fun () -> 0.0);
  Obs.enable ();
  Obs.reset ()

let obs_teardown () =
  Obs.reset ();
  Obs.disable ();
  Obs.set_clock Sys.time

let test_obs_counters_merge () =
  obs_setup ();
  let n = 40 in
  let task i =
    Obs.incr "par.test.tasks";
    Obs.incr ~by:i "par.test.weight";
    Obs.observe "par.test.histo" (float_of_int i)
  in
  (* sequential reference *)
  List.iter task (List.init n Fun.id);
  let seq_tasks = Obs.counter "par.test.tasks" in
  let seq_weight = Obs.counter "par.test.weight" in
  let seq_histo = Option.get (Obs.histogram "par.test.histo") in
  Obs.reset ();
  (with_pool 4 @@ fun pool -> ignore (Par.map pool task (List.init n Fun.id)));
  Alcotest.(check int) "counter equals sequential" seq_tasks
    (Obs.counter "par.test.tasks");
  Alcotest.(check int) "weighted counter equals sequential" seq_weight
    (Obs.counter "par.test.weight");
  let h = Option.get (Obs.histogram "par.test.histo") in
  Alcotest.(check int) "histogram count" seq_histo.Obs.count h.Obs.count;
  Alcotest.(check (float 1e-9)) "histogram sum" seq_histo.Obs.sum h.Obs.sum;
  Alcotest.(check (float 1e-9)) "histogram min" seq_histo.Obs.min_v h.Obs.min_v;
  Alcotest.(check (float 1e-9)) "histogram max" seq_histo.Obs.max_v h.Obs.max_v;
  obs_teardown ()

let test_obs_spans_gain_worker_arg () =
  obs_setup ();
  (with_pool 4 @@ fun pool ->
   ignore
     (Par.map pool
        (fun i -> Obs.with_span "par.test.span" (fun () -> i))
        (List.init 12 Fun.id)));
  let spans =
    List.filter (fun s -> s.Obs.span_name = "par.test.span") (Obs.spans ())
  in
  Alcotest.(check int) "every task span merged" 12 (List.length spans);
  List.iter
    (fun s ->
      match List.assoc_opt "worker" s.Obs.args with
      | Some _ -> ()
      | None -> Alcotest.fail "span lacks worker arg")
    spans;
  obs_teardown ()

let test_obs_disabled_stays_silent () =
  Obs.reset ();
  Obs.disable ();
  (with_pool 4 @@ fun pool ->
   ignore (Par.map pool (fun i -> Obs.incr "par.test.silent"; i) (List.init 8 Fun.id)));
  Alcotest.(check int) "nothing recorded when disabled" 0
    (Obs.counter "par.test.silent")

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "par"
    [
      ( "combinators",
        [
          Alcotest.test_case "map = List.map" `Quick test_map_equals_sequential;
          Alcotest.test_case "filter_map" `Quick test_filter_map_equals_sequential;
          Alcotest.test_case "concat_map" `Quick test_concat_map_equals_sequential;
          Alcotest.test_case "reduce = fold_left" `Quick test_reduce_equals_fold;
          Alcotest.test_case "array combinators" `Quick test_array_combinators;
          Alcotest.test_case "input-order determinism" `Quick
            test_order_determinism;
        ] );
      ( "exceptions",
        [
          Alcotest.test_case "propagation, lowest index" `Quick
            test_exception_propagation;
          Alcotest.test_case "pool survives a failure" `Quick
            test_pool_survives_exception;
        ] );
      ( "pool",
        [
          Alcotest.test_case "reuse across maps, shutdown" `Quick test_pool_reuse;
          Alcotest.test_case "oversubscription" `Quick test_oversubscription;
          Alcotest.test_case "jobs clamped to >= 1" `Quick test_jobs_clamped;
          Alcotest.test_case "width capped at core count" `Quick
            test_width_capped;
          Alcotest.test_case "shared pools are reused" `Quick test_shared_pools;
        ] );
      ( "obs",
        [
          Alcotest.test_case "counters and histograms merge" `Quick
            test_obs_counters_merge;
          Alcotest.test_case "spans gain the worker arg" `Quick
            test_obs_spans_gain_worker_arg;
          Alcotest.test_case "disabled stays silent" `Quick
            test_obs_disabled_stays_silent;
        ] );
    ]
