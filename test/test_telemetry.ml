(* Tests for the Obs.Telemetry sink (percentiles, gini, heatmap,
   ASCII/HTML renderers), the Obs.Benchstore history + comparator, and
   the no-observer-effect property of the instrumented simulators. *)

let with_telemetry f =
  Obs.Telemetry.reset ();
  Obs.Telemetry.enable ();
  Fun.protect
    ~finally:(fun () ->
      Obs.Telemetry.disable ();
      Obs.Telemetry.reset ())
    f

(* ------------------------------------------------------------------ *)
(* Percentiles and gini                                                *)
(* ------------------------------------------------------------------ *)

let test_percentile () =
  let xs = Array.init 100 (fun i -> float_of_int (i + 1)) in
  Alcotest.(check (float 1e-9)) "p50 of 1..100" 50.0 (Obs.Telemetry.percentile xs 50.0);
  Alcotest.(check (float 1e-9)) "p95 of 1..100" 95.0 (Obs.Telemetry.percentile xs 95.0);
  Alcotest.(check (float 1e-9)) "p99 of 1..100" 99.0 (Obs.Telemetry.percentile xs 99.0);
  Alcotest.(check (float 1e-9)) "p0 = min" 1.0 (Obs.Telemetry.percentile xs 0.0);
  Alcotest.(check (float 1e-9)) "p100 = max" 100.0 (Obs.Telemetry.percentile xs 100.0);
  Alcotest.(check (float 1e-9)) "empty -> 0" 0.0 (Obs.Telemetry.percentile [||] 50.0);
  Alcotest.(check (float 1e-9)) "singleton" 7.0 (Obs.Telemetry.percentile [| 7.0 |] 99.0);
  (* nearest-rank on a small unsorted sample: p50 of 5 values is the
     3rd order statistic *)
  Alcotest.(check (float 1e-9)) "p50 of 5" 3.0
    (Obs.Telemetry.percentile [| 5.0; 1.0; 4.0; 2.0; 3.0 |] 50.0);
  (* ties: the rank lands inside a run of equal values and must return
     that value, at every percentile the run spans *)
  let tied = [| 1.0; 2.0; 2.0; 2.0; 9.0 |] in
  Alcotest.(check (float 1e-9)) "p25 inside a tie run" 2.0
    (Obs.Telemetry.percentile tied 25.0);
  Alcotest.(check (float 1e-9)) "p50 inside a tie run" 2.0
    (Obs.Telemetry.percentile tied 50.0);
  Alcotest.(check (float 1e-9)) "p75 inside a tie run" 2.0
    (Obs.Telemetry.percentile tied 75.0);
  Alcotest.(check (float 1e-9)) "all-equal sample at any p" 4.0
    (Obs.Telemetry.percentile [| 4.0; 4.0; 4.0 |] 99.0)

let test_gini () =
  Alcotest.(check (float 1e-9)) "empty" 0.0 (Obs.Telemetry.gini [||]);
  Alcotest.(check (float 1e-9)) "all zero" 0.0 (Obs.Telemetry.gini [| 0.0; 0.0 |]);
  Alcotest.(check (float 1e-9)) "uniform" 0.0 (Obs.Telemetry.gini [| 3.0; 3.0; 3.0 |]);
  Alcotest.(check (float 1e-9)) "concentrated" 0.75
    (Obs.Telemetry.gini [| 0.0; 0.0; 0.0; 10.0 |]);
  (* a single link carries everything yet is perfectly even with
     itself *)
  Alcotest.(check (float 1e-9)) "singleton" 0.0 (Obs.Telemetry.gini [| 5.0 |])

(* ------------------------------------------------------------------ *)
(* Heatmap golden (pinned loads, 3x3 torus)                            *)
(* ------------------------------------------------------------------ *)

let test_heatmap_golden () =
  let loads =
    [
      ((0, 1), 8);
      ((1, 0), 3);
      (* folded into (0,1): max of the two directions *)
      ((3, 4), 4);
      ((2, 0), 2);
      (* row wrap *)
      ((6, 0), 8);
      (* column wrap *)
      ((5, 3), 1);
      ((8, 6), 6);
    ]
  in
  let expected =
    String.concat "\n"
      [
        "link heatmap ('.'=idle, '1'-'9' scaled to peak 8; '~'=torus wrap):";
        "+  9  +  .  +  ~3";
        ".     .     .";
        "+  5  +  .  +  ~2";
        ".     .     .";
        "+  .  +  .  +  ~7";
        "~9    ~.    ~.";
        "";
      ]
  in
  Alcotest.(check string) "3x3 torus heatmap" expected
    (Obs.Telemetry.heatmap ~dims:[| 3; 3 |] ~torus:true loads)

let test_heatmap_mesh_and_table () =
  (* a mesh never draws wrap glyphs *)
  let s = Obs.Telemetry.heatmap ~dims:[| 3; 3 |] ~torus:false [ ((0, 1), 5) ] in
  Alcotest.(check bool) "no wrap glyph on mesh" false (String.contains s '~');
  (* >2-D falls back to the sorted link table *)
  let t =
    Obs.Telemetry.heatmap ~dims:[| 2; 2; 2 |] ~torus:true
      [ ((0, 1), 5); ((1, 3), 9) ]
  in
  Alcotest.(check bool) "link table lists hottest first" true
    (String.length t > 0
    &&
    let i = Str.search_forward (Str.regexp_string "1 -> 3") t 0 in
    let j = Str.search_forward (Str.regexp_string "0 -> 1") t 0 in
    i < j)

(* ------------------------------------------------------------------ *)
(* Golden ASCII report: pinned broadcast on a 4x4 torus                *)
(* ------------------------------------------------------------------ *)

let broadcast_msgs =
  List.init 15 (fun i -> Machine.Message.make ~src:0 ~dst:(i + 1) ~bytes:16)

let test_broadcast_report_golden () =
  with_telemetry (fun () ->
      let topo = Machine.Topology.make ~torus:true [| 4; 4 |] in
      let r =
        Machine.Eventsim.run ~label:"bcast" topo Machine.Eventsim.default_params
          broadcast_msgs
      in
      let run = Option.get (Obs.Telemetry.last_run ()) in
      let actual = Obs.Telemetry.render_ascii run in
      let expected =
        String.concat "\n"
          [
            "telemetry: eventsim [bcast] on 4x4 torus, 15 messages, 962 cycles";
            "outcome: delivered 15  dropped 0  unreachable 0  retransmits 0";
            "latency (cycles): p50 0.0  p95 1.0  p99 1.0  (min 0.0, max 1.0)";
            "queue wait (cycles): p50 0.0  p95 1.0  p99 1.0  (min 0.0, max 1.0)";
            "links: 15 active, load gini 0.383 (busy cycles)";
            "link heatmap ('.'=idle, '1'-'9' scaled to peak 8; '~'=torus wrap):";
            "+  3  +  2  +  .  +  ~2";
            "9     .     .     .";
            "+  3  +  2  +  .  +  ~2";
            "5     .     .     .";
            "+  3  +  2  +  .  +  ~2";
            ".     .     .     .";
            "+  3  +  2  +  .  +  ~2";
            "~5    ~.    ~.    ~.";
            "";
          ]
      in
      Alcotest.(check int) "all delivered" 15 r.Machine.Eventsim.delivered;
      Alcotest.(check string) "broadcast telemetry report" expected actual)

(* ------------------------------------------------------------------ *)
(* HTML dashboard well-formedness                                      *)
(* ------------------------------------------------------------------ *)

(* minimal JSON validator: enough to prove the embedded payload is
   parseable, without pulling a json package into the tests *)
let rec skip_json s pos =
  let n = String.length s in
  let fail msg = Alcotest.failf "bad dashboard JSON: %s at %d" msg pos in
  let rec skip_ws p =
    if p < n && (s.[p] = ' ' || s.[p] = '\n' || s.[p] = '\t' || s.[p] = '\r')
    then skip_ws (p + 1)
    else p
  in
  let pos = skip_ws pos in
  if pos >= n then fail "eof"
  else
    match s.[pos] with
    | '{' | '[' ->
      let close = if s.[pos] = '{' then '}' else ']' in
      let rec items p first =
        let p = skip_ws p in
        if p >= n then fail "unterminated container"
        else if s.[p] = close then p + 1
        else begin
          let p = if first then p else if s.[p] = ',' then skip_ws (p + 1) else fail "missing comma" in
          let p =
            if close = '}' then begin
              let p = skip_json s p in
              let p = skip_ws p in
              if p < n && s.[p] = ':' then p + 1 else fail "missing colon"
            end
            else p
          in
          items (skip_json s p) false
        end
      in
      items (pos + 1) true
    | '"' ->
      let rec str p =
        if p >= n then fail "unterminated string"
        else if s.[p] = '\\' then str (p + 2)
        else if s.[p] = '"' then p + 1
        else str (p + 1)
      in
      str (pos + 1)
    | 't' -> pos + 4
    | 'f' -> pos + 5
    | 'n' -> pos + 4
    | '-' | '0' .. '9' ->
      let rec num p =
        if
          p < n
          && (match s.[p] with
             | '0' .. '9' | '.' | 'e' | 'E' | '+' | '-' -> true
             | _ -> false)
        then num (p + 1)
        else p
      in
      num pos
    | c -> fail (Printf.sprintf "unexpected %c" c)

let extract_payload html =
  let marker = "id=\"telemetry-data\">" in
  let start =
    Str.search_forward (Str.regexp_string marker) html 0 + String.length marker
  in
  let stop = Str.search_forward (Str.regexp_string "</script>") html start in
  String.sub html start (stop - start)

let test_dashboard_html () =
  with_telemetry (fun () ->
      let topo = Machine.Topology.make ~torus:true [| 4; 4 |] in
      ignore
        (Machine.Eventsim.run ~label:"bcast" topo Machine.Eventsim.default_params
           broadcast_msgs);
      ignore
        (Machine.Netsim.run ~label:"priced" topo
           { Machine.Netsim.alpha = 10.0; beta = 0.1; hop = 1.0 }
           broadcast_msgs);
      let html = Obs.Telemetry.render_html (Obs.Telemetry.runs ()) in
      let payload = String.trim (extract_payload html) in
      (* the payload must survive sitting inside a <script> block *)
      Alcotest.(check bool) "payload has no raw '<'" false
        (String.contains payload '<');
      let stop = skip_json payload 0 in
      Alcotest.(check int) "payload is one complete JSON value"
        (String.length payload) stop;
      Alcotest.(check bool) "both runs embedded" true
        (Str.string_match (Str.regexp ".*\"sim\":\"eventsim\".*") payload 0
        && Str.string_match (Str.regexp ".*\"sim\":\"netsim\".*") payload 0))

(* ------------------------------------------------------------------ *)
(* No observer effect: telemetry on/off gives identical results        *)
(* ------------------------------------------------------------------ *)

let result_tuple (r : Machine.Eventsim.result) =
  ( r.Machine.Eventsim.cycles,
    r.Machine.Eventsim.delivered,
    r.Machine.Eventsim.dropped,
    r.Machine.Eventsim.retransmits,
    r.Machine.Eventsim.unreachable,
    r.Machine.Eventsim.max_link_queue,
    r.Machine.Eventsim.total_link_busy )

let msgs_gen =
  QCheck.Gen.(
    list_size (int_range 1 40)
      (map3
         (fun src dst bytes -> Machine.Message.make ~src ~dst ~bytes)
         (int_range 0 8) (int_range 0 8) (int_range 0 64)))

let prop_no_observer_effect =
  QCheck.Test.make ~count:50 ~name:"telemetry on/off: identical eventsim results"
    (QCheck.make msgs_gen) (fun msgs ->
      let topo = Machine.Topology.make ~torus:true [| 3; 3 |] in
      let faults =
        Machine.Fault.make ~seed:7
          [ Machine.Fault.Flaky { link = None; prob = 0.05 } ]
      in
      let run () =
        result_tuple
          (Machine.Eventsim.run ~faults topo Machine.Eventsim.default_params msgs)
      in
      Obs.Telemetry.disable ();
      let off = run () in
      let on =
        with_telemetry (fun () ->
            let r = run () in
            (* and the recorded run agrees with the returned result *)
            let tr = Option.get (Obs.Telemetry.last_run ()) in
            let count o =
              List.length
                (List.filter
                   (fun (m : Obs.Telemetry.message) -> m.Obs.Telemetry.outcome = o)
                   tr.Obs.Telemetry.messages)
            in
            let _, delivered, dropped, _, unreachable, _, _ = r in
            assert (count Obs.Telemetry.Delivered = delivered);
            assert (count Obs.Telemetry.Dropped = dropped);
            assert (count Obs.Telemetry.Unreachable = unreachable);
            assert (List.length tr.Obs.Telemetry.messages = List.length msgs);
            r)
      in
      on = off)

(* ------------------------------------------------------------------ *)
(* Benchstore: record round-trip and parse errors                      *)
(* ------------------------------------------------------------------ *)

let test_benchstore_roundtrip () =
  let r =
    Obs.Benchstore.make ~jobs:4 ~cache_on:true ~faults:"flaky:0.05"
      ~git_rev:"abc123" ~timestamp:"2026-08-06T12:00:00Z" ~experiment:"faultbench"
      ~metric:"rate0.05.ev_direct_cycles" 4102.0
  in
  (match Obs.Benchstore.of_line (Obs.Benchstore.to_line r) with
  | Ok r' -> Alcotest.(check bool) "round-trip" true (r = r')
  | Error e -> Alcotest.failf "round-trip failed: %s" e);
  (* defaults *)
  let d = Obs.Benchstore.make ~experiment:"e" ~metric:"m" 1.5 in
  (match Obs.Benchstore.of_line (Obs.Benchstore.to_line d) with
  | Ok d' ->
    Alcotest.(check bool) "defaults round-trip" true (d = d');
    Alcotest.(check bool) "no jobs" true (d'.Obs.Benchstore.jobs = None)
  | Error e -> Alcotest.failf "defaults round-trip failed: %s" e)

let test_benchstore_bad_lines () =
  let check_err name line expect =
    match Obs.Benchstore.of_line line with
    | Ok _ -> Alcotest.failf "%s: expected an error" name
    | Error e ->
      Alcotest.(check bool)
        (Printf.sprintf "%s mentions %S (got %S)" name expect e)
        true
        (Str.string_match (Str.regexp (".*" ^ Str.quote expect ^ ".*")) e 0)
  in
  check_err "schema mismatch"
    "{\"v\":999,\"experiment\":\"e\",\"metric\":\"m\",\"value\":1}"
    "schema version mismatch";
  check_err "missing version" "{\"experiment\":\"e\",\"metric\":\"m\",\"value\":1}"
    "schema version";
  check_err "missing metric" "{\"v\":1,\"experiment\":\"e\",\"value\":1}" "missing";
  check_err "garbage" "not json at all" ""

let test_benchstore_file_roundtrip () =
  let file = Filename.temp_file "benchstore" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> Sys.remove file)
    (fun () ->
      let mk m v = Obs.Benchstore.make ~experiment:"x" ~metric:m v in
      Obs.Benchstore.append file [ mk "a_time" 10.0; mk "b_time" 20.0 ];
      (* append again: latest record per key wins in load_metrics *)
      Obs.Benchstore.append file [ mk "a_time" 11.0 ];
      Alcotest.(check int) "all records kept" 3
        (List.length (Obs.Benchstore.load file));
      let metrics = Obs.Benchstore.load_metrics file in
      Alcotest.(check (list (pair string (float 1e-9))))
        "latest wins, order preserved"
        [ ("x.a_time", 11.0); ("x.b_time", 20.0) ]
        metrics)

(* ------------------------------------------------------------------ *)
(* Comparator thresholds                                               *)
(* ------------------------------------------------------------------ *)

let verdict_of metrics_base metrics_cur name =
  let cs =
    Obs.Benchstore.compare_metrics ~threshold:0.3 ~baseline:metrics_base
      ~current:metrics_cur ()
  in
  (List.find (fun c -> c.Obs.Benchstore.comp_metric = name) cs)
    .Obs.Benchstore.comp_verdict

let test_compare_thresholds () =
  let is_regression = function Obs.Benchstore.Regression _ -> true | _ -> false in
  (* exactly at threshold passes: the inequality is strict *)
  Alcotest.(check bool) "lower-better at threshold passes" true
    (verdict_of [ ("a_time", 100.0) ] [ ("a_time", 130.0) ] "a_time"
    = Obs.Benchstore.Pass);
  Alcotest.(check bool) "lower-better just past threshold fails" true
    (is_regression
       (verdict_of [ ("a_time", 100.0) ] [ ("a_time", 130.5) ] "a_time"));
  (* a 50% slowdown is caught *)
  Alcotest.(check bool) "50% slowdown detected" true
    (is_regression
       (verdict_of [ ("a_time", 100.0) ] [ ("a_time", 150.0) ] "a_time"));
  (* higher-better metrics gate the other direction *)
  Alcotest.(check bool) "speedup at threshold passes" true
    (verdict_of [ ("s.speedup", 2.0) ] [ ("s.speedup", 1.4) ] "s.speedup"
    = Obs.Benchstore.Pass);
  Alcotest.(check bool) "speedup collapse fails" true
    (is_regression
       (verdict_of [ ("s.speedup", 2.0) ] [ ("s.speedup", 1.39) ] "s.speedup"));
  (* informational metrics never regress *)
  Alcotest.(check bool) "informational passes any change" true
    (verdict_of [ ("seed", 42.0) ] [ ("seed", 1000.0) ] "seed"
    = Obs.Benchstore.Pass);
  (* zero baseline on a lower-better metric: any nonzero is a regression *)
  Alcotest.(check bool) "zero baseline regression" true
    (is_regression
       (verdict_of [ ("d.dropped", 0.0) ] [ ("d.dropped", 1.0) ] "d.dropped"));
  Alcotest.(check bool) "zero baseline zero current passes" true
    (verdict_of [ ("d.dropped", 0.0) ] [ ("d.dropped", 0.0) ] "d.dropped"
    = Obs.Benchstore.Pass)

let test_compare_missing_added () =
  let cs =
    Obs.Benchstore.compare_metrics ~threshold:0.3
      ~baseline:[ ("a_time", 1.0); ("gone_time", 2.0) ]
      ~current:[ ("a_time", 1.0); ("new_time", 3.0) ]
      ()
  in
  let v name =
    (List.find (fun c -> c.Obs.Benchstore.comp_metric = name) cs)
      .Obs.Benchstore.comp_verdict
  in
  Alcotest.(check bool) "dropped metric is Missing" true
    (v "gone_time" = Obs.Benchstore.Missing);
  Alcotest.(check bool) "new metric is Added" true
    (v "new_time" = Obs.Benchstore.Added);
  let fails = Obs.Benchstore.failures cs in
  Alcotest.(check int) "only the missing metric fails" 1 (List.length fails);
  let report = Obs.Benchstore.render_report ~threshold:0.3 cs in
  Alcotest.(check bool) "report says FAIL" true
    (try
       ignore (Str.search_forward (Str.regexp_string "FAIL") report 0);
       true
     with Not_found -> false)

let test_direction_heuristics () =
  let d = Obs.Benchstore.direction_of_metric in
  Alcotest.(check bool) "speedup is higher-better" true
    (d "sweep.speedup" = Obs.Benchstore.Higher_better);
  Alcotest.(check bool) "gain is higher-better" true
    (d "netsim.gain" = Obs.Benchstore.Higher_better);
  Alcotest.(check bool) "cycles is lower-better" true
    (d "ev_direct_cycles" = Obs.Benchstore.Lower_better);
  Alcotest.(check bool) "seconds suffix is lower-better" true
    (d "jobs2.seconds" = Obs.Benchstore.Lower_better);
  Alcotest.(check bool) "unknown is informational" true
    (d "topology" = Obs.Benchstore.Informational)

(* ------------------------------------------------------------------ *)
(* JSON snapshot flattening                                            *)
(* ------------------------------------------------------------------ *)

let test_metrics_of_json () =
  let doc =
    "{\"seed\":42,\"rates\":[{\"rate\":0.0,\"cycles\":100},{\"rate\":0.1,\"cycles\":200}],\"name\":\"x\"}"
  in
  let metrics = Obs.Benchstore.metrics_of_json doc in
  Alcotest.(check (list (pair string (float 1e-9))))
    "numeric leaves flattened, strings skipped"
    [
      ("seed", 42.0);
      ("rates.0.rate", 0.0);
      ("rates.0.cycles", 100.0);
      ("rates.1.rate", 0.1);
      ("rates.1.cycles", 200.0);
    ]
    metrics;
  Alcotest.(check bool) "malformed raises Parse_error" true
    (try
       ignore (Obs.Benchstore.metrics_of_json "{broken");
       false
     with Obs.Benchstore.Parse_error _ -> true)

(* ------------------------------------------------------------------ *)
(* The CLI installs a wall clock                                       *)
(* ------------------------------------------------------------------ *)

(* The CLI binary is a declared dune dep, built into the bin/
   directory next to this test's own directory.  A wall-clock Obs
   clock puts Chrome-trace timestamps (microseconds since the epoch)
   far above anything a process-CPU clock could produce. *)
let test_cli_wall_clock () =
  let cli =
    Filename.concat
      (Filename.dirname Sys.executable_name)
      "../bin/resopt_cli.exe"
  in
  let trace = Filename.temp_file "cli_trace" ".json" in
  Fun.protect
    ~finally:(fun () -> Sys.remove trace)
    (fun () ->
      let cmd =
        Printf.sprintf "%s run example1 --trace %s >/dev/null 2>&1"
          (Filename.quote cli) (Filename.quote trace)
      in
      Alcotest.(check int) "cli exits 0" 0 (Sys.command cmd);
      let ic = open_in trace in
      let len = in_channel_length ic in
      let body = really_input_string ic len in
      close_in ic;
      let re = Str.regexp "\"ts\":[ ]*\\([0-9.e+]+\\)" in
      let _ = Str.search_forward re body 0 in
      let ts = float_of_string (Str.matched_group 1 body) in
      Alcotest.(check bool)
        (Printf.sprintf "first span ts %.0f is epoch-scale microseconds" ts)
        true (ts > 1e12))

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "telemetry"
    [
      ( "stats",
        [
          Alcotest.test_case "percentile nearest-rank" `Quick test_percentile;
          Alcotest.test_case "gini" `Quick test_gini;
        ] );
      ( "heatmap",
        [
          Alcotest.test_case "3x3 torus golden" `Quick test_heatmap_golden;
          Alcotest.test_case "mesh and link table" `Quick
            test_heatmap_mesh_and_table;
          Alcotest.test_case "broadcast report golden" `Quick
            test_broadcast_report_golden;
        ] );
      ( "dashboard",
        [ Alcotest.test_case "html embeds parseable JSON" `Quick test_dashboard_html ] );
      ( "observer",
        [ QCheck_alcotest.to_alcotest prop_no_observer_effect ] );
      ( "benchstore",
        [
          Alcotest.test_case "record round-trip" `Quick test_benchstore_roundtrip;
          Alcotest.test_case "bad lines" `Quick test_benchstore_bad_lines;
          Alcotest.test_case "file round-trip" `Quick test_benchstore_file_roundtrip;
          Alcotest.test_case "thresholds" `Quick test_compare_thresholds;
          Alcotest.test_case "missing and added" `Quick test_compare_missing_added;
          Alcotest.test_case "direction heuristics" `Quick
            test_direction_heuristics;
          Alcotest.test_case "json snapshot flattening" `Quick
            test_metrics_of_json;
        ] );
      ( "cli",
        [ Alcotest.test_case "wall clock installed" `Quick test_cli_wall_clock ] );
    ]
