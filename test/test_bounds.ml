(* Communication lower bounds (lib/bounds + Resopt.Efficiency).

   Hand-computed goldens pin the cycle-packing arithmetic on two
   flows small enough to decompose on paper; the workload x topology
   x mapping matrix then property-checks the two contracts every
   observability surface relies on — [bound_bytes <= achieved_bytes]
   and transfer-time efficiency in (0, 1] — across all Table-2
   workloads, every topology-matrix instance and both the fixed and
   the searched placement.  A qcheck generator does the same for
   random unimodular flows.  Sweep integration: the eff column only
   exists when asked for, and the CSV without --bounds is
   byte-identical.  Benchstore: efficiency regressions gate, bound
   tightenings don't. *)

open Linalg
module Topology = Machine.Topology

let topo_matrix =
  [
    ("mesh4x8", Topology.mesh2d ~p:4 ~q:8);
    ("torus8x8", Topology.make ~torus:true [| 8; 8 |]);
    ("torus4x4x2", Topology.torus3d ~p:4 ~q:4 ~r:2);
    ("fattree2x4", Topology.fat_tree ~levels:2 ~arity:4);
    ("fattree3x2", Topology.fat_tree ~levels:3 ~arity:2);
    ("dragonfly-minimal", Topology.dragonfly ~groups:4 ~routers:4 ~hosts:2 ());
    ( "dragonfly-adaptive",
      Topology.dragonfly ~routing:(Topology.Valiant 7) ~groups:4 ~routers:4
        ~hosts:2 () );
  ]

(* ------------------------------------------------------------------ *)
(* Mat.rank                                                            *)
(* ------------------------------------------------------------------ *)

let test_rank () =
  Alcotest.(check int) "identity 3" 3 (Mat.rank (Mat.identity 3));
  Alcotest.(check int) "zero 2x3" 0 (Mat.rank (Mat.zero 2 3));
  Alcotest.(check int) "paper T" 2 (Mat.rank (Mat.of_lists [ [ 1; 2 ]; [ 3; 7 ] ]));
  Alcotest.(check int) "rank-1 multiple rows" 1
    (Mat.rank (Mat.of_lists [ [ 2; 4 ]; [ 1; 2 ] ]));
  Alcotest.(check int) "row vector" 1 (Mat.rank (Mat.of_row [| 0; 0; 5 |]));
  (* the flow classifier: T - I full, shear - I rank 1, I - I zero *)
  let classify f = Mat.rank (Mat.sub f (Mat.identity 2)) in
  Alcotest.(check int) "T mixes fully" 2
    (classify (Mat.of_lists [ [ 1; 2 ]; [ 3; 7 ] ]));
  Alcotest.(check int) "shear U_3 is rank 1" 1
    (classify (Mat.of_lists [ [ 1; 3 ]; [ 0; 1 ] ]));
  Alcotest.(check int) "transpose swap is rank 1" 1
    (classify (Mat.of_lists [ [ 0; 1 ]; [ 1; 0 ] ]));
  Alcotest.(check int) "identity is local" 0 (classify (Mat.identity 2))

(* ------------------------------------------------------------------ *)
(* Volume bound goldens                                                *)
(* ------------------------------------------------------------------ *)

(* 1-D circular shift: v -> v + 1 on 6 cells, 3 processors holding 2
   cells each in blocks.  One orbit of length 6; cap 2 forces >= 3
   processors on it, so >= 3 boundary crossings — and block placement
   achieves exactly 3 (at cells 1->2, 3->4, 5->0).  The bound is
   tight. *)
let test_volume_shift () =
  let v =
    Bounds.volume ~vgrid:[| 6 |] ~offset:[| 1 |] ~bytes:10
      ~place:(fun c -> c.(0) / 2)
      [ Mat.identity 1 ]
  in
  Alcotest.(check int) "cells" 6 v.Bounds.cells;
  Alcotest.(check int) "nprocs" 3 v.Bounds.nprocs;
  Alcotest.(check int) "cap" 2 v.Bounds.cap;
  Alcotest.(check int) "one orbit" 1 v.Bounds.orbits;
  Alcotest.(check int) "of length 6" 6 v.Bounds.longest_orbit;
  Alcotest.(check int) "flow_rank (identity flow)" 0 v.Bounds.flow_rank;
  Alcotest.(check int) "bound = ceil(6/2) msgs x 10 B" 30 v.Bounds.bound_bytes;
  Alcotest.(check int) "achieved = 3 crossings x 10 B" 30 v.Bounds.achieved_bytes;
  Alcotest.(check int) "per-proc bound" 10 v.Bounds.per_proc_bound

(* 4x4 transpose under 2x2 blocks: the permutation is an involution —
   4 fixed points and 6 swaps, every orbit within cap 4, so the
   cycle-packing bound is 0 while 8 off-diagonal-block cells really do
   cross (the gap a tiling transformation would close). *)
let test_volume_transpose () =
  let v =
    Bounds.volume ~vgrid:[| 4; 4 |] ~bytes:5
      ~place:(fun c -> (2 * (c.(0) / 2)) + (c.(1) / 2))
      [ Mat.of_lists [ [ 0; 1 ]; [ 1; 0 ] ] ]
  in
  Alcotest.(check int) "cells" 16 v.Bounds.cells;
  Alcotest.(check int) "nprocs" 4 v.Bounds.nprocs;
  Alcotest.(check int) "cap" 4 v.Bounds.cap;
  Alcotest.(check int) "4 fixed + 6 swaps" 10 v.Bounds.orbits;
  Alcotest.(check int) "longest orbit" 2 v.Bounds.longest_orbit;
  Alcotest.(check int) "flow_rank" 1 v.Bounds.flow_rank;
  Alcotest.(check int) "no orbit exceeds cap: bound 0" 0 v.Bounds.bound_bytes;
  Alcotest.(check int) "achieved = 8 cells x 5 B" 40 v.Bounds.achieved_bytes

let test_volume_shape_mismatch () =
  Alcotest.check_raises "1x1 flow on a 2-D grid"
    (Invalid_argument "Bounds.volume: flow shape does not match vgrid")
    (fun () ->
      ignore
        (Bounds.volume ~vgrid:[| 4; 4 |] ~bytes:1
           ~place:(fun _ -> 0)
           [ Mat.identity 1 ]))

(* ------------------------------------------------------------------ *)
(* Transfer-time bound                                                 *)
(* ------------------------------------------------------------------ *)

let test_transfer_empty () =
  let topo = Topology.make ~torus:true [| 4; 4 |] in
  let params = (Machine.Models.paragon ()).Machine.Models.net in
  let t = Bounds.transfer_time topo params [] in
  Alcotest.(check (float 0.0)) "no traffic: zero bound" 0.0 t.Bounds.bound_time;
  Alcotest.(check (float 0.0)) "no traffic: efficiency 1" 1.0 t.Bounds.efficiency;
  (* local-only traffic is the same as none *)
  let local = [ { Machine.Message.src = 3; dst = 3; bytes = 64 } ] in
  let t = Bounds.transfer_time topo params local in
  Alcotest.(check (float 0.0)) "local-only: efficiency 1" 1.0 t.Bounds.efficiency

let check_time_components name topo (t : Bounds.time) =
  let a = t.Bounds.achieved in
  let serial = max a.Machine.Netsim.max_sender a.Machine.Netsim.max_receiver in
  Alcotest.(check bool)
    (name ^ ": serial_lb <= serial") true
    (t.Bounds.serial_lb <= serial);
  Alcotest.(check bool)
    (name ^ ": link_lb <= max_link_load") true
    (t.Bounds.link_lb <= a.Machine.Netsim.max_link_load);
  Alcotest.(check bool)
    (name ^ ": hops_lb <= max_hops") true
    (t.Bounds.hops_lb <= a.Machine.Netsim.max_hops);
  Alcotest.(check bool)
    (name ^ ": bound_time <= achieved") true
    (t.Bounds.bound_time <= a.Machine.Netsim.time +. 1e-9);
  Alcotest.(check bool)
    (name ^ ": efficiency in (0,1]") true
    (t.Bounds.efficiency > 0.0 && t.Bounds.efficiency <= 1.0);
  ignore topo

(* ------------------------------------------------------------------ *)
(* The workload x topology x mapping matrix                            *)
(* ------------------------------------------------------------------ *)

let check_efficiency name (e : Resopt.Efficiency.t) =
  let v = e.Resopt.Efficiency.volume in
  Alcotest.(check bool)
    (name ^ ": bound <= achieved bytes") true
    (v.Bounds.bound_bytes <= v.Bounds.achieved_bytes);
  Alcotest.(check bool)
    (name ^ ": bound_bytes >= 0") true
    (v.Bounds.bound_bytes >= 0);
  check_time_components name () e.Resopt.Efficiency.time

let test_matrix_invariant () =
  List.iter
    (fun (w : Resopt.Workloads.t) ->
      let flows = Resopt.Residual.flows_of_workload ~m:2 w in
      List.iter
        (fun (tname, topo) ->
          let model = Machine.Models.of_topo topo in
          let name = w.Resopt.Workloads.name ^ "/" ^ tname in
          match Resopt.Efficiency.of_flows model flows with
          | None ->
            Alcotest.(check bool)
              (name ^ ": None only without a 2-D grid") true
              (Topology.ndims topo <> 2)
          | Some e ->
            Alcotest.(check bool)
              (name ^ ": Some needs a 2-D grid") true
              (Topology.ndims topo = 2);
            check_efficiency name e)
        topo_matrix)
    (Resopt.Workloads.all ())

(* the searched placement re-prices the achieved side; the invariants
   must survive it (volume bound is placement-independent) *)
let test_matrix_mapped () =
  let spec = Mapping.spec Mapping.Search in
  List.iter
    (fun wname ->
      let w = Resopt.Workloads.find wname in
      let flows = Resopt.Residual.flows_of_workload ~m:2 w in
      List.iter
        (fun (tname, topo) ->
          let model = Machine.Models.of_topo topo in
          match Resopt.Efficiency.of_flows ~mapping:spec model flows with
          | None -> ()
          | Some e -> check_efficiency (wname ^ "/" ^ tname ^ "/mapped") e)
        topo_matrix)
    [ "example1"; "transpose"; "matmul" ]

(* pinned end-to-end values: the running example on the reference
   machine.  Deterministic closed-form arithmetic — a change here is a
   real behavior change, not noise. *)
let test_pinned_example1 () =
  match
    Resopt.Efficiency.of_workload ~m:2 (Machine.Models.paragon ())
      (Resopt.Workloads.find "example1")
  with
  | None -> Alcotest.fail "paragon has a simulation grid"
  | Some e ->
    let v = e.Resopt.Efficiency.volume in
    Alcotest.(check int) "achieved bytes" 30720 v.Bounds.achieved_bytes;
    Alcotest.(check int) "flow rank" 2 v.Bounds.flow_rank;
    Alcotest.(check string) "efficiency" "0.516"
      (Printf.sprintf "%.3f" e.Resopt.Efficiency.time.Bounds.efficiency)

let test_empty_flows () =
  match Resopt.Efficiency.of_flows (Machine.Models.paragon ()) [] with
  | None -> Alcotest.fail "expected Some"
  | Some e ->
    Alcotest.(check int) "no flows, no bytes" 0
      e.Resopt.Efficiency.volume.Bounds.achieved_bytes;
    Alcotest.(check (float 0.0)) "efficiency 1" 1.0
      e.Resopt.Efficiency.time.Bounds.efficiency

let test_obs_counters () =
  Obs.enable ();
  Fun.protect ~finally:Obs.disable @@ fun () ->
  Obs.reset ();
  let before = Obs.counter "bounds.computed" in
  (match
     Resopt.Efficiency.of_flows (Machine.Models.paragon ())
       [ Resopt.Residual.default_flow ]
   with
  | Some _ -> ()
  | None -> Alcotest.fail "expected Some");
  Alcotest.(check int) "bounds.computed incremented" (before + 1)
    (Obs.counter "bounds.computed");
  Alcotest.(check bool) "last_efficiency gauge set" true
    (Obs.gauge "bounds.last_efficiency" <> None)

(* ------------------------------------------------------------------ *)
(* Random unimodular flows (qcheck)                                    *)
(* ------------------------------------------------------------------ *)

let flow_of (k1, k2, k3) =
  let u k = Mat.of_lists [ [ 1; k ]; [ 0; 1 ] ] in
  let l k = Mat.of_lists [ [ 1; 0 ]; [ k; 1 ] ] in
  Mat.mul (u k1) (Mat.mul (l k2) (u k3))

let grid2d_instances =
  List.filter (fun (_, t) -> Topology.ndims t = 2) topo_matrix

let prop_bound_le_achieved =
  QCheck.Test.make ~count:60
    ~name:"volume bound <= achieved bytes for random unimodular flows"
    QCheck.(
      quad (int_range (-3) 3) (int_range (-3) 3) (int_range (-3) 3)
        (int_range 0 (List.length grid2d_instances - 1)))
    (fun (k1, k2, k3, ti) ->
      let _, topo = List.nth grid2d_instances ti in
      let vgrid = [| 2 * Topology.dim topo 0; 2 * Topology.dim topo 1 |] in
      let layout = Distrib.Layout.all_cyclic 2 in
      let place v = Distrib.Layout.place layout ~vgrid ~topo v in
      let v =
        Bounds.volume ~vgrid ~bytes:8 ~place [ flow_of (k1, k2, k3) ]
      in
      v.Bounds.bound_bytes <= v.Bounds.achieved_bytes
      && v.Bounds.bound_bytes >= 0)

let prop_transfer_efficiency =
  QCheck.Test.make ~count:30
    ~name:"transfer-time efficiency in (0,1] for random unimodular flows"
    QCheck.(
      quad (int_range (-3) 3) (int_range (-3) 3) (int_range (-3) 3)
        (int_range 0 (List.length grid2d_instances - 1)))
    (fun (k1, k2, k3, ti) ->
      let _, topo = List.nth grid2d_instances ti in
      let vgrid = [| 2 * Topology.dim topo 0; 2 * Topology.dim topo 1 |] in
      let layout = Distrib.Layout.all_cyclic 2 in
      let place v = Distrib.Layout.place layout ~vgrid ~topo v in
      let msgs =
        Machine.Patterns.affine_messages ~vgrid ~flow:(flow_of (k1, k2, k3))
          ~bytes:8 ~place ()
      in
      let params = (Machine.Models.of_topo topo).Machine.Models.net in
      let t = Bounds.transfer_time topo params msgs in
      t.Bounds.efficiency > 0.0
      && t.Bounds.efficiency <= 1.0
      && t.Bounds.bound_time
         <= t.Bounds.achieved.Machine.Netsim.time +. 1e-9)

(* ------------------------------------------------------------------ *)
(* Sweep integration                                                   *)
(* ------------------------------------------------------------------ *)

let strip (r : Resopt.Sweep.row) =
  { r with Resopt.Sweep.time_ms = 0.0; cost_ms = 0.0; eff = None }

let test_sweep_bounds () =
  let workloads = [ Resopt.Workloads.find "example1" ] in
  let plain = Resopt.Sweep.run ~workloads () in
  let bounded = Resopt.Sweep.run ~workloads ~bounds:true () in
  List.iter
    (fun (r : Resopt.Sweep.row) ->
      match (r.Resopt.Sweep.model, r.Resopt.Sweep.eff) with
      | "t3d", None -> ()
      | "t3d", Some _ -> Alcotest.fail "t3d has no grid, expected no eff"
      | m, None -> Alcotest.fail (m ^ ": expected an efficiency")
      | m, Some e ->
        Alcotest.(check bool) (m ^ " eff in (0,1]") true (e > 0.0 && e <= 1.0))
    bounded;
  (* without bounds no row carries one, and the rows are otherwise
     identical (timing aside) *)
  List.iter
    (fun (r : Resopt.Sweep.row) ->
      Alcotest.(check bool) "plain rows carry no eff" true
        (r.Resopt.Sweep.eff = None))
    plain;
  Alcotest.(check bool) "rows identical modulo eff and timing" true
    (List.map strip plain = List.map strip bounded);
  (* the CSV without the flag is byte-identical: no efficiency column *)
  let csv_plain = Resopt.Sweep.to_csv plain in
  let csv_stripped = Resopt.Sweep.to_csv (List.map strip bounded) in
  Alcotest.(check string) "bounds-free CSV byte-identical" csv_plain
    csv_stripped;
  let contains hay needle =
    let re = Str.regexp_string needle in
    try
      ignore (Str.search_forward re hay 0);
      true
    with Not_found -> false
  in
  Alcotest.(check bool) "no efficiency column without the flag" false
    (contains csv_plain "efficiency");
  Alcotest.(check bool) "efficiency column with the flag" true
    (contains (Resopt.Sweep.to_csv bounded) "efficiency");
  (* metrics gain the per-model aggregate *)
  let metrics = Resopt.Sweep.metrics bounded in
  Alcotest.(check bool) "cm5.efficiency aggregate present" true
    (List.mem_assoc "cm5.efficiency" metrics);
  Alcotest.(check bool) "no aggregate without the flag" false
    (List.mem_assoc "cm5.efficiency" (Resopt.Sweep.metrics plain))

(* ------------------------------------------------------------------ *)
(* Benchstore directions                                               *)
(* ------------------------------------------------------------------ *)

let test_benchstore_directions () =
  let dir = Obs.Benchstore.direction_of_metric in
  Alcotest.(check bool) "efficiency is higher-better" true
    (dir "boundsbench.example1.torus8x8.efficiency"
    = Obs.Benchstore.Higher_better);
  Alcotest.(check bool) "bound_bytes informational" true
    (dir "x.bound_bytes" = Obs.Benchstore.Informational);
  Alcotest.(check bool) "bound_time informational (not a latency)" true
    (dir "x.bound_time" = Obs.Benchstore.Informational);
  Alcotest.(check bool) "achieved_bytes informational" true
    (dir "x.achieved_bytes" = Obs.Benchstore.Informational);
  (* the heuristic still applies elsewhere *)
  Alcotest.(check bool) "costs stay lower-better" true
    (dir "cm5.optimized_cost" = Obs.Benchstore.Lower_better);
  Alcotest.(check bool) "gains stay higher-better" true
    (dir "cm5.gain" = Obs.Benchstore.Higher_better);
  (* an efficiency drop beyond threshold fails the gate *)
  let comps =
    Obs.Benchstore.compare_metrics ~threshold:0.1
      ~baseline:[ ("a.efficiency", 0.9); ("a.bound_bytes", 100.0) ]
      ~current:[ ("a.efficiency", 0.5); ("a.bound_bytes", 500.0) ]
      ()
  in
  let failures = Obs.Benchstore.failures comps in
  Alcotest.(check int) "exactly the efficiency drop fails" 1
    (List.length failures);
  Alcotest.(check bool) "and it is the efficiency metric" true
    (List.exists
       (fun (c : Obs.Benchstore.comparison) ->
         c.Obs.Benchstore.comp_metric = "a.efficiency")
       failures);
  (* an efficiency gain and a tightened bound both pass *)
  let comps =
    Obs.Benchstore.compare_metrics ~threshold:0.1
      ~baseline:[ ("a.efficiency", 0.5); ("a.bound_bytes", 100.0) ]
      ~current:[ ("a.efficiency", 0.9); ("a.bound_bytes", 500.0) ]
      ()
  in
  Alcotest.(check int) "improvements never fail" 0
    (List.length (Obs.Benchstore.failures comps))

let () =
  Alcotest.run "bounds"
    [
      ( "rank",
        [ Alcotest.test_case "Mat.rank" `Quick test_rank ] );
      ( "volume",
        [
          Alcotest.test_case "1-D shift golden" `Quick test_volume_shift;
          Alcotest.test_case "4x4 transpose golden" `Quick
            test_volume_transpose;
          Alcotest.test_case "shape mismatch" `Quick test_volume_shape_mismatch;
        ] );
      ( "transfer",
        [ Alcotest.test_case "empty / local traffic" `Quick test_transfer_empty ] );
      ( "matrix",
        [
          Alcotest.test_case "workloads x topologies" `Slow
            test_matrix_invariant;
          Alcotest.test_case "with searched placement" `Slow test_matrix_mapped;
          Alcotest.test_case "pinned example1/paragon" `Quick
            test_pinned_example1;
          Alcotest.test_case "no flows" `Quick test_empty_flows;
          Alcotest.test_case "obs counters" `Quick test_obs_counters;
        ] );
      ( "random",
        [
          QCheck_alcotest.to_alcotest prop_bound_le_achieved;
          QCheck_alcotest.to_alcotest prop_transfer_efficiency;
        ] );
      ( "sweep",
        [ Alcotest.test_case "eff column and CSV" `Slow test_sweep_bounds ] );
      ( "benchstore",
        [
          Alcotest.test_case "metric directions" `Quick
            test_benchstore_directions;
        ] );
    ]
