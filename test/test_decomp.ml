(* Tests for the communication-decomposition machinery (paper §4-5). *)

open Linalg
open Decomp

let mat = Alcotest.testable Mat.pp Mat.equal
let m_of = Mat.of_lists

let prop ?(count = 300) name arb f =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~name ~count arb f)

(* ------------------------------------------------------------------ *)
(* Elementary matrices                                                 *)
(* ------------------------------------------------------------------ *)

let test_elementary_basic () =
  Alcotest.check mat "l2" (m_of [ [ 1; 0 ]; [ 3; 1 ] ]) (Elementary.l2 3);
  Alcotest.check mat "u2" (m_of [ [ 1; -2 ]; [ 0; 1 ] ]) (Elementary.u2 (-2));
  Alcotest.(check bool) "l2 elementary" true (Elementary.is_elementary (Elementary.l2 5));
  Alcotest.(check bool) "id elementary" true (Elementary.is_elementary (Mat.identity 3));
  Alcotest.(check (option int)) "axis of l2" (Some 1)
    (Elementary.axis_of (Elementary.l2 4));
  Alcotest.(check (option int)) "axis of u2" (Some 0)
    (Elementary.axis_of (Elementary.u2 4));
  Alcotest.(check (option int)) "axis of id" None (Elementary.axis_of (Mat.identity 2))

let test_elementary_nd () =
  let e = Elementary.make ~dim:3 ~axis:1 [| 2; 1; -1 |] in
  Alcotest.check mat "3-D elementary"
    (m_of [ [ 1; 0; 0 ]; [ 2; 1; -1 ]; [ 0; 0; 1 ] ])
    e;
  Alcotest.(check bool) "elementary" true (Elementary.is_elementary e);
  let unirow = Elementary.make ~dim:3 ~axis:1 [| 2; 5; -1 |] in
  Alcotest.(check bool) "unirow, not elementary" true
    (Elementary.is_unirow unirow && not (Elementary.is_elementary unirow));
  Alcotest.check_raises "zero diagonal rejected"
    (Invalid_argument "Elementary.make: zero diagonal") (fun () ->
      ignore (Elementary.make ~dim:2 ~axis:0 [| 0; 1 |]))

(* ------------------------------------------------------------------ *)
(* Direct decomposition                                                *)
(* ------------------------------------------------------------------ *)

let check_factors t expected_count =
  match Decompose.min_factors t with
  | None -> Alcotest.failf "expected %d factors, got none <= 4" expected_count
  | Some fs ->
    Alcotest.(check int) "factor count" expected_count (List.length fs);
    Alcotest.check mat "product" t (Elementary.product (Mat.identity 2 :: fs));
    List.iter
      (fun f ->
        Alcotest.(check bool) "each factor elementary" true
          (Elementary.is_elementary f))
      fs

let test_decompose_identity () = check_factors (Mat.identity 2) 0
let test_decompose_one () = check_factors (Elementary.l2 7) 1

let test_decompose_paper_t () =
  (* the worked example: T = [[1,2],[3,7]] = L(3) U(2) *)
  let t = m_of [ [ 1; 2 ]; [ 3; 7 ] ] in
  check_factors t 2;
  match Decompose.min_factors t with
  | Some [ l; u ] ->
    Alcotest.check mat "L(3)" (Elementary.l2 3) l;
    Alcotest.check mat "U(2)" (Elementary.u2 2) u
  | _ -> Alcotest.fail "two factors expected"

let test_decompose_three () =
  (* a = 3, d = 3, c = 2: c | a - 1, neither a = 1 nor d = 1 *)
  check_factors (m_of [ [ 3; 4 ]; [ 2; 3 ] ]) 3

let test_decompose_four () =
  (* found by exhaustive search: requires four factors *)
  let h = Search.factor_histogram ~bound:4 () in
  Alcotest.(check int) "all small matrices <= 4 factors" 0 h.Search.beyond_four;
  Alcotest.(check bool) "some need exactly 4" true (h.Search.by_factors.(4) > 0)

let test_decompose_rejects () =
  Alcotest.check_raises "det 2" (Invalid_argument "Decompose: determinant must be 1")
    (fun () -> ignore (Decompose.min_factors (m_of [ [ 2; 0 ]; [ 0; 1 ] ])));
  Alcotest.check_raises "3x3" (Invalid_argument "Decompose: expected a 2x2 matrix")
    (fun () -> ignore (Decompose.min_factors (Mat.identity 3)))

let gen_elementary_product =
  QCheck.Gen.(
    int_range 0 4 >>= fun n ->
    list_size (return n)
      (map2
         (fun is_l k -> if is_l then Elementary.l2 k else Elementary.u2 k)
         bool (int_range (-4) 4)))

let arb_elem_product =
  QCheck.make
    ~print:(fun fs -> Mat.to_string (Elementary.product (Mat.identity 2 :: fs)))
    gen_elementary_product

let gen_det1 =
  (* random product of elementary matrices: a generic SL2(Z) sample *)
  QCheck.Gen.(
    list_size (int_range 0 7)
      (map2
         (fun is_l k -> if is_l then Elementary.l2 k else Elementary.u2 k)
         bool (int_range (-3) 3)))

let arb_det1 =
  QCheck.make
    ~print:(fun fs -> Mat.to_string (Elementary.product (Mat.identity 2 :: fs)))
    gen_det1

let decompose_props =
  [
    prop "products of <= 4 factors are recognized" arb_elem_product (fun fs ->
        let t = Elementary.product (Mat.identity 2 :: fs) in
        match Decompose.min_factors t with
        | None -> false
        | Some got ->
          List.length got <= 4
          && Mat.equal t (Elementary.product (Mat.identity 2 :: got)));
    prop "min_factors is minimal among alternating forms" arb_elem_product
      (fun fs ->
        (* whatever count we report, the product itself bounds it *)
        let t = Elementary.product (Mat.identity 2 :: fs) in
        match Decompose.factor_count t with
        | None -> false
        | Some k ->
          (* merging adjacent same-type factors can only shrink fs *)
          k <= List.length fs || List.length fs > 4);
    prop "euclid always reconstructs det-1 matrices" arb_det1 (fun fs ->
        let t = Elementary.product (Mat.identity 2 :: fs) in
        let got = Decompose.euclid t in
        Mat.equal t (Elementary.product (Mat.identity 2 :: got))
        && List.for_all Elementary.is_elementary got);
  ]

(* ------------------------------------------------------------------ *)
(* Similarity                                                          *)
(* ------------------------------------------------------------------ *)

let test_similarity_trivial () =
  let t = m_of [ [ 1; 2 ]; [ 3; 7 ] ] in
  match Similarity.sufficient t with
  | None -> Alcotest.fail "a = 1 case"
  | Some r ->
    Alcotest.check mat "identity conjugator" (Mat.identity 2) r.Similarity.conjugator

let test_similarity_sufficient () =
  (* c | a - 1 with a <> 1: conjugation needed *)
  let t = m_of [ [ 3; 1 ]; [ 2; 1 ] ] in
  match Similarity.sufficient t with
  | None -> Alcotest.fail "condition holds"
  | Some r ->
    Alcotest.(check bool) "conjugator unimodular" true
      (Unimodular.is_unimodular r.Similarity.conjugator);
    Alcotest.check mat "similar = M T M^-1"
      (Mat.mul
         (Mat.mul r.Similarity.conjugator t)
         (Unimodular.inverse r.Similarity.conjugator))
      r.Similarity.similar;
    Alcotest.(check bool) "two factors" true (List.length r.Similarity.factors <= 2)

let test_similarity_negative () =
  (* the parabolic obstruction: trace -2, no two-factor similar form
     even with a generous conjugator bound *)
  let t = m_of [ [ -1; -5 ]; [ 0; -1 ] ] in
  Alcotest.(check bool) "sufficient fails" true (Similarity.sufficient t = None);
  Alcotest.(check bool) "search fails at bound 4" true
    (Similarity.search ~bound:4 t = None);
  Alcotest.(check int) "discriminant 0" 0 (Similarity.discriminant t)

let test_similarity_search_finds () =
  (* search subsumes the sufficient condition *)
  let t = m_of [ [ 3; 1 ]; [ 2; 1 ] ] in
  match Similarity.search ~bound:2 t with
  | None -> Alcotest.fail "search should find"
  | Some r ->
    Alcotest.check mat "conjugation correct"
      (Mat.mul
         (Mat.mul r.Similarity.conjugator t)
         (Unimodular.inverse r.Similarity.conjugator))
      r.Similarity.similar

let similarity_props =
  [
    prop ~count:150 "sufficient condition results verify" arb_det1 (fun fs ->
        let t = Elementary.product (Mat.identity 2 :: fs) in
        match Similarity.sufficient t with
        | None -> true
        | Some r ->
          Unimodular.is_unimodular r.Similarity.conjugator
          && Mat.equal
               (Mat.mul
                  (Mat.mul r.Similarity.conjugator t)
                  (Unimodular.inverse r.Similarity.conjugator))
               r.Similarity.similar
          && List.length r.Similarity.factors <= 2
          && Mat.equal r.Similarity.similar
               (Elementary.product (Mat.identity 2 :: r.Similarity.factors)));
  ]

(* ------------------------------------------------------------------ *)
(* Arbitrary determinant                                               *)
(* ------------------------------------------------------------------ *)

let test_gendet_paper_style () =
  let t = m_of [ [ 2; 1 ]; [ 1; 1 ] ] in
  let fs = Gendet.decompose t in
  Alcotest.check mat "product" t (Elementary.product fs);
  Alcotest.(check bool) "all unirow" true (List.for_all Elementary.is_unirow fs)

let test_gendet_rejects_singular () =
  Alcotest.check_raises "singular" (Invalid_argument "Gendet.decompose: singular")
    (fun () -> ignore (Gendet.decompose (m_of [ [ 1; 2 ]; [ 2; 4 ] ])))

let gen_nonsingular =
  QCheck.Gen.(
    int_range 2 3 >>= fun n ->
    map
      (fun entries -> Mat.make n n (fun i j -> entries.(i).(j)))
      (array_size (return n) (array_size (return n) (int_range (-5) 5))))

let arb_nonsingular = QCheck.make ~print:Mat.to_string gen_nonsingular

let gendet_props =
  [
    prop ~count:300 "gendet reconstructs any non-singular matrix" arb_nonsingular
      (fun t ->
        QCheck.assume (Mat.det t <> 0);
        let fs = Gendet.decompose t in
        Mat.equal t (Elementary.product fs)
        && List.for_all Elementary.is_unirow fs);
    prop ~count:300 "gendet factor determinants multiply" arb_nonsingular (fun t ->
        QCheck.assume (Mat.det t <> 0);
        let fs = Gendet.decompose t in
        List.fold_left (fun acc f -> acc * Mat.det f) 1 fs = Mat.det t);
  ]

(* ------------------------------------------------------------------ *)
(* Search                                                              *)
(* ------------------------------------------------------------------ *)

let test_search_histogram () =
  let h = Search.factor_histogram ~bound:3 () in
  (* identity is the only 0-factor matrix *)
  Alcotest.(check int) "one identity" 1 h.Search.by_factors.(0);
  Alcotest.(check int) "none beyond four" 0 h.Search.beyond_four;
  Alcotest.(check int) "total"
    (Array.fold_left ( + ) 0 h.Search.by_factors)
    h.Search.total

let test_search_similarity () =
  let total, suff, srch = Search.similarity_histogram ~bound:2 ~conj_bound:2 () in
  Alcotest.(check bool) "search at least as strong as sufficient" true (srch >= suff);
  Alcotest.(check bool) "not everything is similar to LU" true (srch < total)

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "decomp"
    [
      ( "elementary",
        [
          Alcotest.test_case "2x2 constructors" `Quick test_elementary_basic;
          Alcotest.test_case "n-D and unirow" `Quick test_elementary_nd;
        ] );
      ( "decompose",
        [
          Alcotest.test_case "identity" `Quick test_decompose_identity;
          Alcotest.test_case "single factor" `Quick test_decompose_one;
          Alcotest.test_case "paper worked example" `Quick test_decompose_paper_t;
          Alcotest.test_case "three factors" `Quick test_decompose_three;
          Alcotest.test_case "four factors exist, none need more" `Quick
            test_decompose_four;
          Alcotest.test_case "input validation" `Quick test_decompose_rejects;
        ]
        @ decompose_props );
      ( "similarity",
        [
          Alcotest.test_case "trivial case" `Quick test_similarity_trivial;
          Alcotest.test_case "sufficient condition" `Quick
            test_similarity_sufficient;
          Alcotest.test_case "parabolic obstruction" `Quick test_similarity_negative;
          Alcotest.test_case "search" `Quick test_similarity_search_finds;
        ]
        @ similarity_props );
      ( "gendet",
        [
          Alcotest.test_case "paper-style factorization" `Quick
            test_gendet_paper_style;
          Alcotest.test_case "rejects singular" `Quick test_gendet_rejects_singular;
        ]
        @ gendet_props );
      ( "search",
        [
          Alcotest.test_case "histogram invariants" `Quick test_search_histogram;
          Alcotest.test_case "similarity histogram" `Quick test_search_similarity;
        ] );
    ]
