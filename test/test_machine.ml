(* Tests for the DMPC simulator: topology, routing, the contention
   cost model, collectives and the machine models. *)

open Machine

let prop ?(count = 200) name arb f =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~name ~count arb f)

(* ------------------------------------------------------------------ *)
(* Topology                                                            *)
(* ------------------------------------------------------------------ *)

let test_topology_basics () =
  let t = Topology.mesh2d ~p:8 ~q:4 in
  Alcotest.(check int) "size" 32 (Topology.size t);
  Alcotest.(check int) "ndims" 2 (Topology.ndims t);
  Alcotest.(check int) "diameter" 10 (Topology.diameter t);
  Alcotest.(check int) "rank of (2,3)" 11 (Topology.rank_of t [| 2; 3 |]);
  Alcotest.(check (array int)) "coords of 11" [| 2; 3 |] (Topology.coords_of t 11)

let test_topology_errors () =
  Alcotest.check_raises "empty" (Invalid_argument "Topology.make: no dimensions")
    (fun () -> ignore (Topology.make [||]));
  let t = Topology.line 4 in
  Alcotest.check_raises "rank out of range"
    (Invalid_argument "Topology.rank_of: out of range") (fun () ->
      ignore (Topology.rank_of t [| 4 |]))

let topology_props =
  let arb =
    QCheck.make
      ~print:(fun (p, q, r) -> Printf.sprintf "%dx%d rank %d" p q r)
      QCheck.Gen.(
        int_range 1 6 >>= fun p ->
        int_range 1 6 >>= fun q ->
        map (fun r -> (p, q, r)) (int_range 0 ((p * q) - 1)))
  in
  [
    prop "rank/coords roundtrip" arb (fun (p, q, r) ->
        let t = Topology.mesh2d ~p ~q in
        Topology.rank_of t (Topology.coords_of t r) = r);
  ]

(* ------------------------------------------------------------------ *)
(* Routing                                                             *)
(* ------------------------------------------------------------------ *)

let test_route_xy () =
  let t = Topology.mesh2d ~p:4 ~q:4 in
  let src = Topology.rank_of t [| 0; 0 |] and dst = Topology.rank_of t [| 2; 3 |] in
  let path = Route.path t ~src ~dst in
  Alcotest.(check int) "length = manhattan" 5 (List.length path);
  (* dimension order: the first hops move along dimension 0 *)
  (match path with
  | (a, b) :: _ ->
    let ca = Topology.coords_of t a and cb = Topology.coords_of t b in
    Alcotest.(check int) "first hop changes dim 0" (ca.(0) + 1) cb.(0);
    Alcotest.(check int) "dim 1 unchanged" ca.(1) cb.(1)
  | [] -> Alcotest.fail "non-empty");
  Alcotest.(check int) "hops" 5 (Route.hops t ~src ~dst);
  Alcotest.(check (list (pair int int))) "self route empty" []
    (Route.path t ~src ~dst:src)

let route_props =
  let arb =
    QCheck.make
      ~print:(fun (s, d) -> Printf.sprintf "%d->%d" s d)
      QCheck.Gen.(pair (int_range 0 31) (int_range 0 31))
  in
  [
    prop "path length = manhattan distance" arb (fun (s, d) ->
        let t = Topology.mesh2d ~p:8 ~q:4 in
        List.length (Route.path t ~src:s ~dst:d) = Route.hops t ~src:s ~dst:d);
    prop "path is connected" arb (fun (s, d) ->
        let t = Topology.mesh2d ~p:8 ~q:4 in
        let path = Route.path t ~src:s ~dst:d in
        let rec chained prev = function
          | [] -> true
          | (a, b) :: rest -> a = prev && chained b rest
        in
        match path with
        | [] -> s = d
        | (a, _) :: _ -> a = s && chained s path
                         && (match List.rev path with (_, b) :: _ -> b = d | [] -> false));
  ]

(* ------------------------------------------------------------------ *)
(* Netsim                                                              *)
(* ------------------------------------------------------------------ *)

let params = { Netsim.alpha = 10.0; beta = 0.1; hop = 0.4 }

let test_netsim_empty () =
  let t = Topology.mesh2d ~p:4 ~q:4 in
  let s = Netsim.run t params [] in
  Alcotest.(check (float 0.0)) "zero time" 0.0 s.Netsim.time;
  let local = [ Message.make ~src:3 ~dst:3 ~bytes:100 ] in
  Alcotest.(check (float 0.0)) "local free" 0.0 (Netsim.run t params local).Netsim.time

let test_netsim_single () =
  let t = Topology.line 4 in
  let s = Netsim.run t params [ Message.make ~src:0 ~dst:1 ~bytes:100 ] in
  (* alpha + beta*100 + hop*1 *)
  Alcotest.(check (float 1e-9)) "time" (10.0 +. 10.0 +. 0.4) s.Netsim.time;
  Alcotest.(check int) "one message" 1 s.Netsim.messages

let test_netsim_coalescing () =
  let t = Topology.line 4 in
  let msgs =
    [ Message.make ~src:0 ~dst:1 ~bytes:50; Message.make ~src:0 ~dst:1 ~bytes:50 ]
  in
  let merged = Netsim.run t params msgs in
  Alcotest.(check int) "coalesced to one" 1 merged.Netsim.messages;
  Alcotest.(check (float 1e-9)) "one startup" (10.0 +. 10.0 +. 0.4)
    merged.Netsim.time;
  let raw = Netsim.run ~coalesce:false t params msgs in
  Alcotest.(check int) "uncoalesced" 2 raw.Netsim.messages;
  Alcotest.(check (float 1e-9)) "two startups" (20.0 +. 10.0 +. 0.4)
    raw.Netsim.time

let test_netsim_contention () =
  (* two messages share the 1->2 link: its load doubles *)
  let t = Topology.line 4 in
  let msgs =
    [ Message.make ~src:0 ~dst:3 ~bytes:100; Message.make ~src:1 ~dst:2 ~bytes:100 ]
  in
  let s = Netsim.run t params msgs in
  Alcotest.(check int) "max link load" 200 s.Netsim.max_link_load;
  Alcotest.(check int) "max hops" 3 s.Netsim.max_hops

let test_netsim_link_loads () =
  let t = Topology.line 3 in
  let loads =
    Netsim.link_loads t [ Message.make ~src:0 ~dst:2 ~bytes:10 ]
  in
  Alcotest.(check int) "two links" 2 (List.length loads);
  List.iter (fun (_, l) -> Alcotest.(check int) "load 10" 10 l) loads

let test_netsim_torus_loads () =
  (* pins the load accumulation shared by [run] and [link_loads]: a +1
     shift on a 4x4 torus is one wrap-aware hop per node, so 16
     messages put exactly 10 bytes on each of 16 distinct links *)
  let t = Topology.make ~torus:true [| 4; 4 |] in
  let place v = Topology.rank_of t v in
  let msgs =
    Patterns.translation_messages ~vgrid:[| 4; 4 |] ~shift:[| 1; 0 |] ~bytes:10
      ~place ()
  in
  let loads = Netsim.link_loads t msgs in
  Alcotest.(check int) "16 distinct links" 16 (List.length loads);
  Alcotest.(check int) "total bytes x hops" 160
    (List.fold_left (fun acc (_, l) -> acc + l) 0 loads);
  List.iter (fun (_, l) -> Alcotest.(check int) "each link 10" 10 l) loads;
  let s = Netsim.run t params msgs in
  Alcotest.(check int) "run agrees: hottest link" 10 s.Netsim.max_link_load;
  Alcotest.(check int) "run agrees: total hops" 16 s.Netsim.total_hops

(* ------------------------------------------------------------------ *)
(* Collectives and models                                              *)
(* ------------------------------------------------------------------ *)

let test_collective_monotone () =
  let small = Topology.mesh2d ~p:2 ~q:2 and big = Topology.mesh2d ~p:8 ~q:8 in
  Alcotest.(check bool) "bigger machine, slower broadcast" true
    (Collective.broadcast big params ~bytes:64
     > Collective.broadcast small params ~bytes:64);
  Alcotest.(check bool) "partial cheaper than total" true
    (Collective.partial_broadcast big params ~axis:0 ~bytes:64
     <= Collective.broadcast big params ~bytes:64)

let test_models_table1_shape () =
  (* the Table 1 ordering: reduction <= broadcast << translation <<
     general, with an order of magnitude between broadcast and
     general *)
  let m = Models.cm5 () in
  let b = 256 in
  let red = Models.reduce_time m ~bytes:b in
  let bc = Models.broadcast_time m ~bytes:b in
  let tr = Models.translation_time m ~bytes:b in
  let gen = Models.general_time m ~bytes:b in
  Alcotest.(check bool) "red <= bc" true (red <= bc);
  Alcotest.(check bool) "bc < trans" true (bc < tr);
  Alcotest.(check bool) "trans < general" true (tr < gen);
  Alcotest.(check bool) "general >= 10x broadcast" true (gen >= 10.0 *. bc)

let test_models_paragon_software () =
  let m = Models.paragon () in
  Alcotest.(check bool) "no hardware collectives" true (m.Models.hw = None);
  (* the log-depth software tree must beat the naive sequential
     broadcast (root sends P-1 individual messages) *)
  let naive =
    float_of_int (Topology.size m.Models.topo - 1)
    *. (m.Models.net.Netsim.alpha +. (m.Models.net.Netsim.beta *. 256.0))
  in
  Alcotest.(check bool) "tree broadcast < naive" true
    (Models.broadcast_time m ~bytes:256 < naive)

(* ------------------------------------------------------------------ *)
(* Patterns                                                            *)
(* ------------------------------------------------------------------ *)

let test_patterns_wrap_bijective () =
  (* a det-1 flow is a bijection of the virtual torus: source and
     destination multisets coincide *)
  let vgrid = [| 6; 4 |] in
  let flow = Linalg.Mat.of_lists [ [ 1; 1 ]; [ 0; 1 ] ] in
  let place v = (v.(0) * 4) + v.(1) in
  let msgs = Patterns.affine_messages ~vgrid ~flow ~bytes:1 ~place () in
  Alcotest.(check int) "one message per virtual proc" 24 (List.length msgs);
  let srcs = List.sort compare (List.map (fun m -> m.Message.src) msgs) in
  let dsts = List.sort compare (List.map (fun m -> m.Message.dst) msgs) in
  Alcotest.(check (list int)) "permutation" srcs dsts

let test_patterns_clip () =
  let vgrid = [| 4; 4 |] in
  let flow = Linalg.Mat.of_lists [ [ 1; 0 ]; [ 0; 1 ] ] in
  let place v = (v.(0) * 4) + v.(1) in
  let msgs =
    Patterns.affine_messages ~boundary:`Clip ~vgrid ~flow
      ~offset:[| 2; 0 |] ~bytes:1 ~place ()
  in
  (* shift by 2 clips half the grid *)
  Alcotest.(check int) "half clipped" 8 (List.length msgs)

let test_patterns_translation () =
  let vgrid = [| 4; 4 |] in
  let place v = (v.(0) * 4) + v.(1) in
  let msgs = Patterns.translation_messages ~vgrid ~shift:[| 1; 0 |] ~bytes:1 ~place () in
  Alcotest.(check int) "all procs" 16 (List.length msgs)

(* ------------------------------------------------------------------ *)

(* [--topo] byte-identity guards, via the real CLI binary: the default
   paragon machine IS torus:8x8, so naming it explicitly must not move
   a single byte; and a non-grid topology must not disturb runs that
   never asked for one. *)

let cli = Filename.concat (Filename.dirname Sys.executable_name) "../bin/resopt_cli.exe"

let cli_output args =
  let out = Filename.temp_file "resopt_topo" ".out" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove out with Sys_error _ -> ())
    (fun () ->
      let cmd =
        Printf.sprintf "%s %s > %s 2>&1" (Filename.quote cli) args
          (Filename.quote out)
      in
      let rc = Sys.command cmd in
      let ic = open_in_bin out in
      let s = really_input_string ic (in_channel_length ic) in
      close_in ic;
      (rc, s))

let test_topo_default_identity () =
  let rc0, plain = cli_output "report example1 --net" in
  let rc1, explicit = cli_output "report example1 --net --topo torus:8x8" in
  Alcotest.(check int) "plain exits 0" 0 rc0;
  Alcotest.(check int) "explicit exits 0" 0 rc1;
  Alcotest.(check string) "--topo torus:8x8 is byte-identical to the default"
    plain explicit;
  let rc2, f_plain =
    cli_output "report example1 --net --faults down:3-4 --map greedy"
  in
  let rc3, f_explicit =
    cli_output
      "report example1 --net --faults down:3-4 --map greedy --topo torus:8x8"
  in
  Alcotest.(check int) "faulted plain exits 0" 0 rc2;
  Alcotest.(check int) "faulted explicit exits 0" 0 rc3;
  Alcotest.(check string)
    "byte-identical with --faults and --map composed" f_plain f_explicit

let test_topo_bad_spec_rejected () =
  let rc, out = cli_output "simulate --topo bogus" in
  Alcotest.(check bool) "non-zero exit" true (rc <> 0);
  Alcotest.(check bool) "error names the grammar" true
    (try
       ignore (Str.search_forward (Str.regexp_string "bad topology spec") out 0);
       true
     with Not_found -> false)

let () =
  Alcotest.run "machine"
    [
      ( "topology",
        [
          Alcotest.test_case "basics" `Quick test_topology_basics;
          Alcotest.test_case "errors" `Quick test_topology_errors;
        ]
        @ topology_props );
      ( "route",
        [ Alcotest.test_case "xy discipline" `Quick test_route_xy ] @ route_props );
      ( "netsim",
        [
          Alcotest.test_case "empty and local" `Quick test_netsim_empty;
          Alcotest.test_case "single message" `Quick test_netsim_single;
          Alcotest.test_case "coalescing" `Quick test_netsim_coalescing;
          Alcotest.test_case "link contention" `Quick test_netsim_contention;
          Alcotest.test_case "link loads" `Quick test_netsim_link_loads;
          Alcotest.test_case "torus load pin" `Quick test_netsim_torus_loads;
        ] );
      ( "models",
        [
          Alcotest.test_case "collective monotone" `Quick test_collective_monotone;
          Alcotest.test_case "table 1 shape" `Quick test_models_table1_shape;
          Alcotest.test_case "paragon software" `Quick test_models_paragon_software;
        ] );
      ( "patterns",
        [
          Alcotest.test_case "wrap bijective" `Quick test_patterns_wrap_bijective;
          Alcotest.test_case "clip boundary" `Quick test_patterns_clip;
          Alcotest.test_case "translation" `Quick test_patterns_translation;
        ] );
      ( "topo-flag",
        [
          Alcotest.test_case "default identity" `Quick test_topo_default_identity;
          Alcotest.test_case "bad spec rejected" `Quick test_topo_bad_spec_rejected;
        ] );
    ]
